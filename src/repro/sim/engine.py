"""The dual-processor standby-sparing discrete-event engine.

One engine serves every scheme in the paper; what differs between
MKSS-ST, MKSS-DP, the greedy scheme, and MKSS-Selective is *policy*:
how a released job is classified (statically by pattern or dynamically by
flexibility degree), which processor each copy goes to, and how much each
backup release is postponed.  Policies express exactly that through
:meth:`SchedulingPolicy.plan_release`; the engine owns everything else:

* per-processor mandatory (MJQ) and optional (OJQ) ready queues, with the
  MJQ strictly above the OJQ (Algorithm 1, lines 2-9);
* preemptive fixed-priority dispatch inside each queue (optional jobs are
  ordered by (flexibility degree, task priority) -- the paper's
  "more flexible = less urgent" footnote);
* dropping optional jobs that can no longer finish by their deadline
  (Figure 2's O11);
* backup cancellation the instant the sibling copy completes successfully;
* transient-fault detection at completion and permanent-fault takeover;
* outcome recording and (m,k)-history maintenance, so flexibility degrees
  evolve exactly as in the paper's traces.

Releases are driven by a shared :class:`~repro.sim.timeline.ReleaseTimeline`
(precomputed once per (task set, horizon) and reused across schemes)
instead of self-chaining heap events.  Two execution modes exist:

* **trace mode** (``collect_trace=True``, default): full
  :class:`~repro.sim.trace.ExecutionTrace` with segments, records, and
  events -- what plots, exports, and debugging need;
* **stats mode** (``collect_trace=False``): only the aggregate counters
  downstream sweeps consume (:class:`~repro.sim.folding.RunStats`),
  skipping all segment/record/log construction.

Stats mode additionally unlocks the **cycle-folding fast path**
(``fold=True``): at hyperperiod boundaries the engine snapshots its
canonical state (:mod:`repro.sim.snapshot`); when a snapshot repeats and
no fault can still occur, the remaining whole cycles are folded
analytically (:mod:`repro.sim.folding`) and exact simulation resumes for
the residual partial cycle.  Folded results are bit-identical to
unfolded ones.

All times are integer ticks (see :mod:`repro.timebase`).
"""

from __future__ import annotations

import heapq
from collections import deque
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from ..analysis.hyperperiod import lcm_ticks
from ..errors import ConfigurationError, SimulationError
from ..model.history import (
    MKHistory,
    make_initial_history,
    normalize_initial_history,
)
from ..model.job import FINISHED_STATUSES, Job, JobOutcome, JobRole, JobStatus
from ..model.patterns import is_window_periodic
from ..model.taskset import TaskSet
from ..timebase import TimeBase
from .folding import RunStats, shift_state
from .queues import ReadyQueue
from .snapshot import (
    EV_DEADLINE,
    EV_ENQUEUE,
    EV_PERMFAULT,
    EV_RELEASE,
    capture_state,
)
from .timeline import ReleaseTimeline
from .trace import ExecutionTrace, LogicalJobRecord

#: Conventional processor indices.
PRIMARY = 0
SPARE = 1

# Event kinds double as the ordering at equal ticks: permanent faults
# strike first, then deadlines are judged, then new jobs arrive, then
# postponed copies enqueue.  Integer kinds keep event dispatch off the
# string-comparison path.  (Defined in snapshot.py so the folding
# machinery can interpret heap entries; aliased here for the hot path.)
_EV_PERMFAULT = EV_PERMFAULT
_EV_DEADLINE = EV_DEADLINE
_EV_RELEASE = EV_RELEASE
_EV_ENQUEUE = EV_ENQUEUE

#: How many distinct boundary states the folding detector retains before
#: it stops looking for a recurrence (memory bound for pathological,
#: never-settling runs).
_MAX_FOLD_SNAPSHOTS = 64


@dataclass(frozen=True)
class CopySpec:
    """One copy the policy wants to create for a released logical job."""

    role: JobRole
    processor: int
    enqueue_tick: int


@dataclass(frozen=True)
class ReleasePlan:
    """Policy verdict for one released logical job.

    Attributes:
        copies: the copies to instantiate (empty = the job is skipped).
        classified_as: "mandatory" / "optional" / "skipped" for reporting.
    """

    copies: Tuple[CopySpec, ...]
    classified_as: str

    @classmethod
    def skip(cls) -> "ReleasePlan":
        return cls(copies=(), classified_as="skipped")


@dataclass
class PolicyContext:
    """Everything a policy may consult when planning a release."""

    taskset: TaskSet
    timebase: TimeBase
    horizon_ticks: int
    histories: Sequence[MKHistory]
    dead_processor: Optional[int] = None

    @property
    def fault_mode(self) -> bool:
        """True once a permanent fault has removed one processor."""
        return self.dead_processor is not None

    def surviving_processor(self) -> int:
        """The processor still alive after a permanent fault."""
        if self.dead_processor is None:
            raise SimulationError("no permanent fault has occurred")
        return SPARE if self.dead_processor == PRIMARY else PRIMARY


class SchedulingPolicy:
    """Base class for standby-sparing scheduling policies.

    Subclasses must implement :meth:`plan_release`; the other hooks have
    sensible defaults.

    Attributes:
        optional_preemption: when True (default) a more urgent optional
            job preempts a running optional job; when False a dispatched
            optional runs to completion unless a *mandatory* job arrives
            (the paper's greedy trace in Figure 3 behaves this way --
            O12 is never started because O22 holds the processor).
            Mandatory jobs always preempt optional ones either way.
    """

    name = "abstract"
    optional_preemption = True

    def prepare(self, ctx: PolicyContext) -> None:
        """One-time offline analysis before the simulation starts."""

    def plan_release(
        self,
        ctx: PolicyContext,
        task_index: int,
        job_index: int,
        release: int,
        deadline: int,
        fd: int,
    ) -> ReleasePlan:
        """Classify a released logical job and emit its copies."""
        raise NotImplementedError

    def on_permanent_fault(self, ctx: PolicyContext, dead_processor: int) -> None:
        """React to a permanent processor fault (optional)."""

    def plan_recovery(
        self, ctx: PolicyContext, job: "Job", now: int
    ) -> Optional[CopySpec]:
        """Optionally schedule a recovery copy for a transiently faulted job.

        Called when a copy completes with a detected transient fault and
        the logical job is still undecided.  Returning a
        :class:`CopySpec` creates a fresh copy of the same logical job
        (software re-execution, the redundancy style of Zhu et al. that
        the paper's introduction contrasts with standby-sparing);
        returning None (default) leaves recovery to the sibling backup.
        """
        return None

    def fold_state(self, ctx: PolicyContext, pattern_phases: Tuple[int, ...]):
        """Hashable signature of the policy's mutable state, or None.

        Cycle folding (see :mod:`repro.sim.snapshot`) may only treat two
        hyperperiod boundaries as equivalent if the *policy* would also
        behave identically from both.  Returning a hashable value
        asserts exactly that: whenever the engine's canonical states and
        these signatures agree at two boundaries, the policy's future
        decisions agree too (its remaining mutable state, if any, is
        time-translation invariant).

        ``pattern_phases[i]`` is ``(jobs of task i released so far) mod
        k_i`` -- the job-index phase a window-periodic static pattern
        needs, since the folding cycle is the LCM of the *periods*, not
        of ``k_i * P_i``.

        The default returns None, which disables folding: a policy we
        know nothing about may carry hidden mutable state.
        """
        return None


    def batch_profile(self, ctx: PolicyContext):
        """Closed-form release rules for the batch kernel, or None.

        Called on a *prepared* policy (after :meth:`prepare`).  Returning
        a :class:`~repro.sim.batch_profile.BatchProfile` asserts that for
        every reachable release state the profile reproduces this
        policy's :meth:`plan_release` exactly, so the vectorized kernel
        (:mod:`repro.sim.batch`) may simulate it without per-release
        callbacks.  The default None keeps the policy on the scalar
        engine -- the safe answer for any policy whose decisions are not
        provably expressible in the profile vocabulary.
        """
        return None

    def conformance(self, ctx: PolicyContext):
        """Scheme-specific invariant suite for the conformance auditor.

        Called on a *prepared* policy (after :meth:`prepare`) with a
        context matching the audited run.  Returning a
        :class:`~repro.sim.validation.ConformanceSpec` opts the policy
        into the scheme-aware checks of
        :func:`repro.sim.validation.audit_result` -- classification
        rules, backup postponement offsets, queue-priority conformance.
        The default None means only the model-level checks apply.
        """
        return None

    def fold_state_from_patterns(
        self, patterns, pattern_phases: Tuple[int, ...]
    ):
        """``pattern_phases`` when every pattern is window-periodic, else None.

        Shared implementation for static-pattern policies: their only
        release-to-release variation is the pattern phase, so the phase
        tuple is a complete fold signature -- provided every pattern
        really is periodic in its window (user-supplied patterns may not
        be, in which case folding must stay off).
        """
        if patterns is not None and all(
            is_window_periodic(pattern) for pattern in patterns
        ):
            return pattern_phases
        return None


TransientFaultFn = Callable[[Job, int], bool]
"""Callable deciding whether a completing copy suffered a transient fault.

Receives the job copy and the completion tick; returns True on fault.
A ``never_faults`` attribute set to True marks the callable as a
statically-known no-op, which keeps the cycle-folding fast path legal.
"""

ExecutionTimeFn = Callable[[int, int, int], int]
"""Callable giving a logical job's *actual* execution time in ticks.

Receives (task_index, job_index, wcet_ticks); must return a value in
[1, wcet_ticks].  Both copies of a mandatory job share the actual time
(same input, same computation).  None means "always WCET", the paper's
assumption.
"""


@dataclass
class SimulationResult:
    """Everything observable about one simulation run.

    ``trace`` is None for stats-only runs (``collect_trace=False``), in
    which case ``stats`` carries the aggregate counters instead; exactly
    one of the two is always present.  ``busy_by_processor`` is filled
    by the engine in both modes, making :meth:`busy_ticks` O(1).
    """

    taskset: TaskSet
    timebase: TimeBase
    horizon_ticks: int
    policy_name: str
    trace: Optional[ExecutionTrace]
    permanent_fault: Optional[Tuple[int, int]] = None  # (processor, tick)
    transient_fault_count: int = 0
    released_jobs: int = 0
    stats: Optional[RunStats] = None
    busy_by_processor: Optional[Tuple[int, ...]] = None
    cycles_folded: int = 0
    fold_cycle_ticks: int = 0
    #: The DVFS :class:`~repro.energy.dvfs.SpeedPlan` the run executed
    #: under, or None (every non-DVFS run).  Carried on the result so
    #: energy accounting and the conformance auditor can re-derive the
    #: speed-aware decomposition without re-running the planner.
    speed_plan: Optional[object] = None
    _mk_cache: Optional[List[bool]] = field(
        default=None, init=False, repr=False, compare=False
    )

    def mk_satisfied(self) -> List[bool]:
        """Per-task verdict: did every k-window keep >= m successes?

        Computed once and cached (sweep aggregation used to recompute
        the full sliding-window scan on every access).
        """
        cached = self._mk_cache
        if cached is None:
            if self.trace is not None:
                cached = [
                    task.mk.is_satisfied_by(self.trace.outcomes_for_task(i))
                    for i, task in enumerate(self.taskset)
                ]
            elif self.stats is not None:
                cached = [count == 0 for count in self.stats.violations]
            else:  # pragma: no cover - engine always fills one of the two
                raise SimulationError("result has neither trace nor stats")
            self._mk_cache = cached
        return list(cached)

    def all_mk_satisfied(self) -> bool:
        """True when no task violated its (m,k)-constraint."""
        return all(self.mk_satisfied())

    def busy_ticks(self, processor: Optional[int] = None) -> int:
        """Execution ticks inside [0, horizon); O(1) from counters."""
        counters = self.busy_by_processor
        if counters is not None:
            if processor is None:
                return sum(counters)
            if 0 <= processor < len(counters):
                return counters[processor]
            return 0
        if self.trace is None:
            raise SimulationError("result has neither trace nor counters")
        return self.trace.busy_ticks(processor, window=(0, self.horizon_ticks))


class _LogicalJob:
    """Engine-internal bookkeeping for one logical job.

    ``record`` is None in stats mode; ``task_index`` and ``fd`` are kept
    directly so outcome accounting and recovery planning never need it.
    """

    __slots__ = ("record", "copies", "decided", "task_index", "fd")

    def __init__(
        self,
        record: Optional[LogicalJobRecord],
        task_index: int,
        fd: int,
    ) -> None:
        self.record = record
        self.copies: List[Job] = []
        self.decided = False
        self.task_index = task_index
        self.fd = fd


class StandbySparingEngine:
    """Simulates one policy over one task set on two processors."""

    def __init__(
        self,
        taskset: TaskSet,
        policy: SchedulingPolicy,
        horizon_ticks: int,
        timebase: Optional[TimeBase] = None,
        transient_fault_fn: Optional[TransientFaultFn] = None,
        permanent_fault: Optional[Tuple[int, int]] = None,
        initial_history_met: "str | bool" = True,
        execution_time_fn: Optional[ExecutionTimeFn] = None,
        collect_trace: bool = True,
        fold: bool = False,
        release_timeline: Optional[ReleaseTimeline] = None,
        speed_plan: Optional[object] = None,
    ) -> None:
        """Configure a run.

        Args:
            taskset: tasks in priority order.
            policy: the scheduling policy under test.
            horizon_ticks: releases strictly before this tick are simulated;
                energy metrics are taken over [0, horizon).
            timebase: tick grid (defaults to the task set's own).
            transient_fault_fn: per-copy fault oracle, or None for no
                transient faults.
            permanent_fault: optional (processor, tick) permanent fault.
            initial_history_met: boundary condition for (m,k)-histories:
                a mode from
                :data:`repro.model.history.INITIAL_HISTORY_MODES`
                (``"met"``/``"miss"``/``"rpattern"``) or the legacy
                booleans (True = "met", False = "miss").
            execution_time_fn: actual execution time model (ACET < WCET);
                None charges every job its full WCET (the paper's model).
            collect_trace: when False, skip all trace construction and
                produce aggregate stats only (sweep mode).
            fold: enable the cycle-folding fast path; requires
                ``collect_trace=False`` (a folded trace would have holes).
                Folding additionally requires a fault-quiet tail -- it
                arms only when no execution-time model is set and the
                transient model is statically fault-free -- and a policy
                whose :meth:`SchedulingPolicy.fold_state` cooperates.
            release_timeline: precomputed release sequence to reuse
                across runs; must match (task set periods, horizon).
            speed_plan: DVFS :class:`~repro.energy.dvfs.SpeedPlan`.
                Main copies released before a permanent fault execute
                their stretched WCETs at the plan's per-task speeds;
                backups, optionals, and post-fault releases run at full
                speed.  Incompatible with ``execution_time_fn`` (an ACET
                draw below the stretched budget would confound the two
                time scales).
        """
        if horizon_ticks <= 0:
            raise ConfigurationError(f"horizon must be positive, got {horizon_ticks}")
        if fold and collect_trace:
            raise ConfigurationError(
                "cycle folding requires stats-only mode (collect_trace=False): "
                "a folded run cannot materialize the skipped cycles' trace"
            )
        if speed_plan is not None and execution_time_fn is not None:
            raise ConfigurationError(
                "a DVFS speed plan cannot be combined with an "
                "execution-time model: stretched WCETs and ACET draws "
                "define conflicting tick budgets"
            )
        self.taskset = taskset
        self.policy = policy
        self.timebase = timebase or taskset.timebase()
        self.horizon = horizon_ticks
        self.transient_fault_fn = transient_fault_fn
        self.permanent_fault = permanent_fault
        if permanent_fault is not None:
            processor, tick = permanent_fault
            if processor not in (PRIMARY, SPARE):
                raise ConfigurationError(f"bad processor {processor} in fault spec")
            if tick < 0:
                raise ConfigurationError(f"fault tick must be >= 0, got {tick}")
        self._initial_history = normalize_initial_history(initial_history_met)
        self.execution_time_fn = execution_time_fn
        self.collect_trace = collect_trace
        self.fold = fold
        self.release_timeline = release_timeline
        self.speed_plan = speed_plan

    # -- public API ---------------------------------------------------------

    def run(self) -> SimulationResult:
        """Execute the simulation and return its result."""
        base = self.timebase
        taskset = self.taskset
        task_count = len(taskset)
        histories = [
            make_initial_history(task.mk, self._initial_history)
            for task in taskset
        ]
        ctx = PolicyContext(
            taskset=taskset,
            timebase=base,
            horizon_ticks=self.horizon,
            histories=histories,
        )
        self.policy.prepare(ctx)

        # Hot-path locals: the closures below run for every event and
        # boundary, so instance attributes they need are bound once here.
        policy = self.policy
        plan_release = policy.plan_release
        plan_recovery = policy.plan_recovery
        horizon = self.horizon
        execution_time_fn = self.execution_time_fn
        transient_fault_fn = self.transient_fault_fn
        collect = self.collect_trace

        periods = [base.to_ticks(task.period) for task in taskset]
        deadlines = [base.to_ticks(task.deadline) for task in taskset]
        wcets = [base.to_ticks(task.wcet) for task in taskset]

        speed_plan = self.speed_plan
        if speed_plan is not None:
            dvfs_speeds = speed_plan.speeds
            dvfs_wcets = speed_plan.stretched_wcets
            if len(dvfs_speeds) != task_count or len(dvfs_wcets) != task_count:
                raise ConfigurationError(
                    f"speed plan covers {len(dvfs_wcets)} tasks, "
                    f"task set has {task_count}"
                )
            for index, ticks in enumerate(dvfs_wcets):
                if ticks < wcets[index]:
                    raise ConfigurationError(
                        f"speed plan shrinks task {index}'s WCET "
                        f"({ticks} < {wcets[index]} ticks); stretched "
                        f"budgets must cover the full-speed WCET"
                    )
        else:
            dvfs_speeds = None
            dvfs_wcets = None

        timeline = self.release_timeline
        if timeline is None:
            timeline = ReleaseTimeline(taskset, horizon, base)
        elif (
            timeline.horizon_ticks != horizon
            or list(timeline.period_ticks) != periods
        ):
            raise ConfigurationError(
                "release timeline does not match this run's periods/horizon"
            )
        rel_ticks = timeline.ticks
        rel_tasks = timeline.tasks
        rel_jobs = timeline.jobs
        rel_count = len(rel_ticks)
        cursor = 0

        trace = ExecutionTrace(processor_count=2) if collect else None
        add_segment = trace.add_segment if collect else None
        stats = None if collect else RunStats(task_count)
        alive = [True, True]
        mjq = [ReadyQueue(), ReadyQueue()]
        ojq = [ReadyQueue(), ReadyQueue()]
        logical: Dict[Tuple[int, int], _LogicalJob] = {}
        # Copies with a scheduled future enqueue, per processor, so a
        # permanent fault can mark exactly the live postponed copies LOST
        # without scanning every logical job ever released.
        pending: List[set] = [set(), set()]
        transient_faults = 0
        released_jobs = 0

        # Per-processor busy/idle accounting (both modes; O(1) busy_ticks
        # on the result).  ``busy_acc`` aliases stats.busy in stats mode
        # so folding advances the same list.
        busy_acc = stats.busy if stats is not None else [0, 0]
        gap_counts = stats.gap_counts if stats is not None else None
        # Per-speed busy ledger (stats mode, DVFS runs only): trace runs
        # carry the speed on each segment instead.
        speed_busy = stats.speed_busy if stats is not None else None
        gap_cursor = [0, 0]
        window_end = [horizon, horizon]

        # Lean per-task (m,k) trackers (stats mode): sliding window of the
        # last k outcomes plus a ones count.  Exact replacement for the
        # monitor's full replay because, with constrained deadlines
        # (D <= P, enforced by the Task model), per-task decide order
        # equals job order.
        tr_k = [task.mk.k for task in taskset]
        tr_m = [task.mk.m for task in taskset]
        # Windows are packed into plain ints (bit 0 = newest outcome,
        # bit k-1 = oldest); ``tr_len`` counts outcomes seen until the
        # window first fills.  (mask, length) encodes the deque contents
        # bijectively, so snapshots stay canonical.
        tr_window = [0] * task_count
        tr_len = [0] * task_count
        tr_ones = [0] * task_count
        tr_kmask = [(1 << k) - 1 for k in tr_k]

        # Heap entries are (time, kind, seq, a, b); ``a``/``b`` are the
        # kind-specific arguments (task/job indices, a Job, a processor).
        # Releases are NOT heap events: they stream from the timeline and
        # merge into the drain loop at kind rank _EV_RELEASE.
        heap: List[Tuple[int, int, int, object, object]] = []
        seq = 0

        def push_event(time: int, kind: int, a: object = None, b: object = None) -> None:
            nonlocal seq
            heapq.heappush(heap, (time, kind, seq, a, b))
            seq += 1

        def defer_enqueue(job: Job) -> None:
            """Schedule a postponed copy's future enqueue and track it."""
            pending[job.processor].add(job)
            push_event(job.enqueue_time, _EV_ENQUEUE, job)

        if self.permanent_fault is not None:
            processor, tick = self.permanent_fault
            push_event(tick, _EV_PERMFAULT, processor)

        # -- cycle folding setup --------------------------------------------
        #
        # fold_mode: 0 = off, 1 = waiting for the permanent fault to land,
        # 2 = armed (snapshotting at boundaries), 3 = folded (done).
        # Folding is legal only when the remaining run is a closed system:
        # stats mode, WCET execution, no transient faults possible, and the
        # permanent fault (if any) already injected.
        fold_mode = 0
        cycle_ticks = 0
        next_boundary = 0
        snapshots: Dict[tuple, Tuple[int, RunStats, Tuple[int, int]]] = {}
        cycles_folded = 0
        fold_cycle = 0
        if (
            self.fold
            and not collect
            # A non-periodic timeline has no hyperperiod recurrence: a
            # snapshot match at one boundary says nothing about the next
            # cycle's releases, so folding must self-disable (the run
            # degrades to exact stats-mode simulation, not silent folds).
            and timeline.periodic
            and execution_time_fn is None
            and (
                transient_fault_fn is None
                or getattr(transient_fault_fn, "never_faults", False)
            )
        ):
            cycle_ticks = lcm_ticks(periods)
            # The earliest possible fold needs two boundary visits plus at
            # least one whole cycle before the horizon.
            if cycle_ticks <= (horizon - 1) - cycle_ticks:
                fold_mode = 1 if self.permanent_fault is not None else 2
                next_boundary = cycle_ticks
        policy_fold_state = policy.fold_state
        tr_ks = tr_k  # alias for the phase computation below

        # -- helpers bound to local state -----------------------------------

        def decide(entry: _LogicalJob, effective: bool, now: int) -> None:
            """Finalize a logical job's (m,k) outcome exactly once."""
            if entry.decided:
                return
            entry.decided = True
            task_index = entry.task_index
            if collect:
                entry.record.outcome = (
                    JobOutcome.EFFECTIVE if effective else JobOutcome.MISSED
                )
                entry.record.decided_at = now
            else:
                if effective:
                    stats.effective += 1
                else:
                    stats.missed += 1
                bit = 1 if effective else 0
                k = tr_k[task_index]
                win = tr_window[task_index]
                count = tr_len[task_index]
                if count == k:
                    ones = tr_ones[task_index] - ((win >> (k - 1)) & 1) + bit
                else:
                    count += 1
                    tr_len[task_index] = count
                    ones = tr_ones[task_index] + bit
                tr_ones[task_index] = ones
                tr_window[task_index] = ((win << 1) | bit) & tr_kmask[task_index]
                if count == k and ones < tr_m[task_index]:
                    stats.violations[task_index] += 1
            histories[task_index].record(effective)

        def abandon_copy(job: Job, now: int, reason: str) -> None:
            if job.is_finished:
                return
            job.status = JobStatus.ABANDONED
            if collect:
                trace.log(now, "abandon", f"{job.name}/{job.role.value}: {reason}")

        def cancel_copy(job: Job, now: int) -> None:
            if job.is_finished:
                return
            job.status = JobStatus.CANCELED
            if collect:
                trace.log(now, "cancel", f"{job.name}/{job.role.value}")

        def enqueue_copy(job: Job, now: int) -> None:
            if job.is_finished:
                return
            job.status = JobStatus.READY
            if job.role is JobRole.OPTIONAL:
                ojq[job.processor].push(job.queue_key, job)
            else:
                mjq[job.processor].push(job.queue_key, job)

        def handle_completion(job: Job, now: int) -> None:
            nonlocal transient_faults
            job.status = JobStatus.COMPLETED
            job.completion_time = now
            faulted = bool(
                transient_fault_fn and transient_fault_fn(job, now)
            )
            job.faulted = faulted
            if faulted:
                transient_faults += 1
                if collect:
                    trace.log(now, "transient-fault", f"{job.name}/{job.role.value}")
            entry = logical[job.key()]
            if faulted:
                if not entry.decided:
                    spec = plan_recovery(ctx, job, now)
                    if spec is not None:
                        if not alive[spec.processor]:
                            raise SimulationError(
                                f"policy {policy.name} planned a "
                                f"recovery onto dead processor {spec.processor}"
                            )
                        recovery = Job(
                            task_index=job.task_index,
                            job_index=job.job_index,
                            role=spec.role,
                            release=job.release,
                            deadline=job.deadline,
                            wcet=job.wcet,
                            processor=spec.processor,
                            enqueue_time=max(spec.enqueue_tick, now),
                            speed=job.speed,
                        )
                        entry.copies.append(recovery)
                        if spec.role is JobRole.OPTIONAL:
                            recovery.queue_key = (
                                entry.fd,
                                job.task_index,
                                job.job_index,
                            )
                        if collect:
                            trace.log(
                                now, "recovery", f"{job.name}/{job.role.value}"
                            )
                        if recovery.enqueue_time <= now:
                            enqueue_copy(recovery, now)
                        else:
                            defer_enqueue(recovery)
                    elif job.role is JobRole.OPTIONAL:
                        # No backup and no recovery: the optional job is
                        # simply not effective.  Decide immediately (the
                        # deadline handler would reach the same verdict).
                        decide(entry, effective=False, now=now)
                return  # a faulted mandatory copy leaves its sibling running
            if now <= job.deadline and not entry.decided:
                decide(entry, effective=True, now=now)
            if job.sibling is not None and not job.sibling.is_finished:
                cancel_copy(job.sibling, now)

        def handle_deadline(task_index: int, job_index: int, now: int) -> None:
            entry = logical.get((task_index, job_index))
            if entry is None:
                raise SimulationError(
                    f"deadline for unknown job ({task_index},{job_index})"
                )
            for job in entry.copies:
                if not job.is_finished and job.status is not JobStatus.RUNNING:
                    abandon_copy(job, now, "deadline passed")
                elif job.status is JobStatus.RUNNING:
                    abandon_copy(job, now, "deadline passed while running")
            if not entry.decided:
                decide(entry, effective=False, now=now)

        def handle_release(task_index: int, job_index: int, now: int) -> None:
            nonlocal released_jobs
            release = now  # timeline entries fire exactly at their tick
            deadline = release + deadlines[task_index]
            fd = histories[task_index].flexibility_degree()
            plan = plan_release(
                ctx, task_index, job_index, release, deadline, fd
            )
            if collect:
                record = LogicalJobRecord(
                    task_index=task_index,
                    job_index=job_index,
                    release=release,
                    deadline=deadline,
                    classified_as=plan.classified_as,
                    flexibility_degree=fd,
                )
                trace.records[(task_index, job_index)] = record
                entry = _LogicalJob(record, task_index, fd)
            else:
                entry = _LogicalJob(None, task_index, fd)
                classified = plan.classified_as
                if classified == "mandatory":
                    stats.mandatory += 1
                elif classified == "optional":
                    stats.optional_executed += 1
                elif classified == "skipped":
                    stats.skipped += 1
                stats.released += 1
            logical[(task_index, job_index)] = entry
            released_jobs += 1

            actual_wcet = wcets[task_index]
            if execution_time_fn is not None and plan.copies:
                actual_wcet = execution_time_fn(
                    task_index, job_index, wcets[task_index]
                )
                if not 1 <= actual_wcet <= wcets[task_index]:
                    raise SimulationError(
                        f"execution_time_fn returned {actual_wcet} outside "
                        f"[1, {wcets[task_index]}] for job "
                        f"({task_index},{job_index})"
                    )
            main_copy: Optional[Job] = None
            for spec in plan.copies:
                if not alive[spec.processor]:
                    # Planning onto a dead processor is a policy bug.
                    raise SimulationError(
                        f"policy {policy.name} planned a copy onto dead "
                        f"processor {spec.processor}"
                    )
                # DVFS: main copies released while both processors live
                # run their stretched budget at the plan's speed; backups,
                # optionals, and post-fault releases fall back to max
                # performance (the survivor has no slack to spend).
                if (
                    dvfs_wcets is not None
                    and spec.role is JobRole.MAIN
                    and ctx.dead_processor is None
                ):
                    copy_wcet = dvfs_wcets[task_index]
                    copy_speed = dvfs_speeds[task_index]
                else:
                    copy_wcet = actual_wcet
                    copy_speed = 1
                job = Job(
                    task_index=task_index,
                    job_index=job_index,
                    role=spec.role,
                    release=release,
                    deadline=deadline,
                    wcet=copy_wcet,
                    processor=spec.processor,
                    enqueue_time=max(spec.enqueue_tick, release),
                    speed=copy_speed,
                )
                entry.copies.append(job)
                if spec.role is JobRole.MAIN:
                    main_copy = job
                elif spec.role is JobRole.BACKUP:
                    if main_copy is None:
                        raise SimulationError(
                            "a BACKUP copy requires a preceding MAIN copy"
                        )
                    main_copy.link_backup(job)
                else:
                    job.queue_key = (fd, task_index, job_index)
                if job.enqueue_time <= now:
                    enqueue_copy(job, now)
                else:
                    defer_enqueue(job)
            push_event(deadline, _EV_DEADLINE, task_index, job_index)

        def handle_permfault(processor: int, now: int) -> None:
            nonlocal fold_mode
            if fold_mode == 1:
                # The fault has landed; from here on the run is a closed
                # system and boundary snapshots become meaningful.
                fold_mode = 2
            if not alive[processor]:
                return
            alive[processor] = False
            ctx.dead_processor = processor
            if collect:
                trace.log(now, "permanent-fault", f"processor {processor}")
            else:
                window_end[processor] = now if now < horizon else horizon
            for queue in (mjq[processor], ojq[processor]):
                for job in queue.live_jobs():
                    job.status = JobStatus.LOST
            # PENDING copies bound to the dead processor (postponed backups
            # not yet enqueued) are tracked per processor, so the fault
            # handler touches only live copies -- not every logical job
            # ever released.
            for job in pending[processor]:
                if not job.is_finished:
                    job.status = JobStatus.LOST
            pending[processor].clear()
            for slot in (current, sticky):
                job = slot[processor]
                if job is not None:
                    if not job.is_finished:
                        job.status = JobStatus.LOST
                    slot[processor] = None
            policy.on_permanent_fault(ctx, processor)

        #: The copy occupying each processor since the last event boundary.
        current: List[Optional[Job]] = [None, None]
        #: A dispatched non-preemptible optional holds its processor (the
        #: paper's greedy trace): it resumes ahead of the OJQ until it
        #: finishes or becomes infeasible, even while mandatory work runs.
        sticky: List[Optional[Job]] = [None, None]

        def drop_infeasible_optional(job: Job, now: int) -> None:
            abandon_copy(job, now, "cannot finish by deadline")
            entry = logical[job.key()]
            if not entry.decided:
                decide(entry, effective=False, now=now)

        def pick(processor: int, now: int) -> Optional[Job]:
            top = mjq[processor].pop()
            if top is not None:
                return top[1]
            held = sticky[processor]
            if held is not None:
                if held.is_finished:
                    sticky[processor] = None
                elif held.can_finish_by_deadline(now):
                    return held
                else:
                    drop_infeasible_optional(held, now)
                    sticky[processor] = None
            while True:
                candidate = ojq[processor].pop()
                if candidate is None:
                    return None
                _, job = candidate
                if job.can_finish_by_deadline(now):
                    if not optional_preemption:
                        sticky[processor] = job
                    return job
                drop_infeasible_optional(job, now)

        # -- main loop -------------------------------------------------------
        #
        # Fast path: each processor keeps its running job across event
        # boundaries; the job is displaced only when a strictly more
        # urgent arrival actually lands (mandatory over optional, or a
        # smaller priority key within the same queue).  This replaces the
        # seed engine's pop/re-push of every running job at every event
        # boundary with two O(1) head peeks per boundary.

        optional_preemption = policy.optional_preemption
        OPTIONAL = JobRole.OPTIONAL
        RUNNING = JobStatus.RUNNING
        finished_statuses = FINISHED_STATUSES
        heappop = heapq.heappop
        now = 0
        guard = 0
        guard_limit = 10_000_000
        while True:
            guard += 1
            if guard > guard_limit:
                raise SimulationError("simulation did not terminate (guard hit)")
            # Drain due events, merging the heap with the release
            # timeline: at equal ticks, permanent faults and deadlines
            # (kinds 0/1) precede releases (rank 2), which precede
            # enqueues (kind 3) -- the same total order the heap alone
            # used to produce when releases were heap events.
            while True:
                if heap:
                    head = heap[0]
                    head_time = head[0]
                    if head_time <= now and (
                        cursor >= rel_count
                        or head_time < rel_ticks[cursor]
                        or (
                            head_time == rel_ticks[cursor]
                            and head[1] < _EV_RELEASE
                        )
                    ):
                        _, kind, _, a, b = heappop(heap)
                        if kind == _EV_DEADLINE:
                            handle_deadline(a, b, now)
                        elif kind == _EV_ENQUEUE:
                            pending[a.processor].discard(a)
                            enqueue_copy(a, now)
                        elif kind == _EV_PERMFAULT:
                            handle_permfault(a, now)
                        else:  # pragma: no cover
                            raise SimulationError(f"unknown event kind {kind!r}")
                        continue
                if cursor < rel_count and rel_ticks[cursor] <= now:
                    handle_release(rel_tasks[cursor], rel_jobs[cursor], now)
                    cursor += 1
                    continue
                break

            # -- cycle folding: snapshot at hyperperiod boundaries ----------
            if fold_mode == 2 and now == next_boundary:
                phases = tuple(
                    (now // periods[i]) % tr_ks[i] for i in range(task_count)
                )
                signature = policy_fold_state(ctx, phases)
                if signature is not None:
                    state = capture_state(
                        now,
                        periods,
                        alive,
                        ctx.dead_processor,
                        histories,
                        tuple(zip(tr_window, tr_len)),
                        heap,
                        mjq,
                        ojq,
                        current,
                        sticky,
                        logical,
                        signature,
                    )
                    if state is not None:
                        offsets = (now - gap_cursor[0], now - gap_cursor[1])
                        prior = snapshots.get(state)
                        if prior is not None:
                            first_tick, base_stats, base_offsets = prior
                            cycle = now - first_tick
                            folds = (horizon - now - 1) // cycle
                            busy_delta = (
                                stats.busy[0] - base_stats.busy[0],
                                stats.busy[1] - base_stats.busy[1],
                            )
                            # The per-cycle gap ledger is only foldable
                            # when every gap-closing processor's open-gap
                            # offset matches (the cycle's first closed
                            # gap straddles the boundary and includes
                            # it); an idle-through-the-cycle processor
                            # closes no gaps, so its offset is free.
                            offsets_ok = all(
                                busy_delta[p] == 0
                                or base_offsets[p] == offsets[p]
                                for p in (PRIMARY, SPARE)
                            )
                            if folds >= 1 and offsets_ok:
                                stats.fold(base_stats, folds)
                                shift = folds * cycle
                                for processor in (PRIMARY, SPARE):
                                    if busy_delta[processor] > 0:
                                        gap_cursor[processor] += shift
                                shift_state(
                                    shift,
                                    [shift // p for p in periods],
                                    heap,
                                    mjq,
                                    ojq,
                                    current,
                                    sticky,
                                    pending,
                                    logical,
                                )
                                cursor += folds * timeline.releases_per_span(
                                    cycle
                                )
                                now += shift
                                cycles_folded = folds
                                fold_cycle = cycle
                                fold_mode = 3
                            elif not offsets_ok:
                                # Same schedule state, different open-gap
                                # prehistory.  Re-anchor on the current
                                # boundary: the repeating schedule fixes
                                # the offset of every busy processor at
                                # the *next* visit, so that one folds.
                                snapshots[state] = (now, stats.copy(), offsets)
                        elif len(snapshots) < _MAX_FOLD_SNAPSHOTS:
                            snapshots[state] = (now, stats.copy(), offsets)
            if fold_mode in (1, 2):
                next_boundary = (now // cycle_ticks + 1) * cycle_ticks
                if next_boundary > (horizon - 1) - cycle_ticks:
                    # No whole cycle can fit after the next boundary;
                    # stop snapshotting (and stop pausing at boundaries).
                    fold_mode = 0

            next_completion: Optional[int] = None
            for processor in (PRIMARY, SPARE):
                if not alive[processor]:
                    continue
                job = current[processor]
                if job is not None and job.status in finished_statuses:
                    # Canceled / abandoned / lost by an event handler.
                    job = None
                if job is not None:
                    if job.role is OPTIONAL:
                        if mjq[processor]:
                            displaced = True
                        elif optional_preemption:
                            head = ojq[processor].head_key()
                            displaced = head is not None and head < job.queue_key
                        else:
                            displaced = False
                    else:
                        head = mjq[processor].head_key()
                        displaced = head is not None and head < job.queue_key
                    if displaced:
                        # A held (sticky) optional parks in its slot and
                        # resumes ahead of the OJQ; anything else rejoins
                        # its ready queue.
                        if job is not sticky[processor]:
                            enqueue_copy(job, now)
                        job = None
                if job is None:
                    job = pick(processor, now)
                if job is not None:
                    job.status = RUNNING
                    completion = now + job.remaining
                    if next_completion is None or completion < next_completion:
                        next_completion = completion
                current[processor] = job

            next_heap_time = heap[0][0] if heap else None
            next_release_time = rel_ticks[cursor] if cursor < rel_count else None
            next_time = next_heap_time
            if next_release_time is not None and (
                next_time is None or next_release_time < next_time
            ):
                next_time = next_release_time
            if next_completion is not None and (
                next_time is None or next_completion < next_time
            ):
                next_time = next_completion
            if next_time is None:
                break
            if fold_mode in (1, 2) and next_time > next_boundary:
                # Pause at the boundary so the snapshot sees a canonical
                # instant even when no event lands exactly there.
                next_time = next_boundary
            if next_time < now:  # pragma: no cover - heap is monotone
                raise SimulationError("time went backwards")

            if next_time > now:
                for processor in (PRIMARY, SPARE):
                    job = current[processor]
                    if job is None:
                        continue
                    ran = job.remaining
                    if next_time - now < ran:
                        ran = next_time - now
                    end = now + ran
                    if collect:
                        if job.started_at is None:
                            job.started_at = now
                        add_segment(processor, now, end, job)
                    if now < horizon:
                        clipped = (end if end <= horizon else horizon) - now
                        busy_acc[processor] += clipped
                        if speed_busy is not None and job.speed != 1:
                            counts = speed_busy[processor]
                            counts[job.speed] = (
                                counts.get(job.speed, 0) + clipped
                            )
                    if not collect:
                        gap_start = gap_cursor[processor]
                        if now > gap_start:
                            gap_end = now
                            if gap_end > window_end[processor]:
                                gap_end = window_end[processor]
                            if gap_end > gap_start:
                                counts = gap_counts[processor]
                                length = gap_end - gap_start
                                counts[length] = counts.get(length, 0) + 1
                        gap_cursor[processor] = end
                    job.remaining -= ran
            now = next_time
            # Primary-processor completions are processed first so a main
            # copy's success cancels its just-finished backup's outcome
            # claim deterministically (both completed the same tick).
            for processor in (PRIMARY, SPARE):
                job = current[processor]
                if job is not None and job.remaining == 0:
                    current[processor] = None
                    if job is sticky[processor]:
                        sticky[processor] = None
                    handle_completion(job, now)

        if collect:
            trace.validate()
        else:
            # Close each processor's final idle gap against its energy
            # window (the horizon, or the fault tick for a dead one).
            for processor in (PRIMARY, SPARE):
                end = window_end[processor]
                start = gap_cursor[processor]
                if start < end:
                    counts = gap_counts[processor]
                    counts[end - start] = counts.get(end - start, 0) + 1
            # Folding scaled the per-counter ledger; mirror the released
            # count kept for the result (stats.released is authoritative).
            released_jobs = stats.released
        return SimulationResult(
            taskset=taskset,
            timebase=base,
            horizon_ticks=self.horizon,
            policy_name=self.policy.name,
            trace=trace,
            permanent_fault=self.permanent_fault,
            transient_fault_count=transient_faults,
            released_jobs=released_jobs,
            stats=stats,
            busy_by_processor=tuple(busy_acc),
            cycles_folded=cycles_folded,
            fold_cycle_ticks=fold_cycle,
            speed_plan=speed_plan,
        )
