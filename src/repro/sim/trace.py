"""Execution traces: what ran where, when, and how each job ended up.

The trace is the single source of truth downstream: energy accounting
integrates processor busy time from segments, the QoS monitor reads
logical-job outcomes, and the Gantt renderer draws the segments.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from ..errors import SimulationError
from ..model.job import Job, JobOutcome


@dataclass(frozen=True)
class Segment:
    """A maximal interval during which one job copy ran on one processor."""

    processor: int
    start: int
    end: int
    task_index: int
    job_index: int
    role: str  # JobRole.value, kept as str for cheap serialization
    #: Execution frequency (DVFS): the int 1 at full speed, an exact
    #: Fraction in (0, 1) for a slowed main copy.  Defaulted so every
    #: pre-DVFS construction site (and serialization) is unchanged.
    speed: "int | object" = 1

    def __post_init__(self) -> None:
        if self.end <= self.start:
            raise SimulationError(
                f"segment must have positive length: [{self.start},{self.end})"
            )

    @property
    def length(self) -> int:
        return self.end - self.start

    def overlap_with(self, window_start: int, window_end: int) -> int:
        """Ticks of this segment inside [window_start, window_end)."""
        lo = max(self.start, window_start)
        hi = min(self.end, window_end)
        return max(0, hi - lo)


@dataclass(frozen=True)
class TraceEvent:
    """A notable scheduling event, for logging and debugging."""

    time: int
    kind: str
    detail: str


@dataclass
class LogicalJobRecord:
    """Final verdict on one logical job J_ij."""

    task_index: int
    job_index: int
    release: int
    deadline: int
    outcome: Optional[JobOutcome] = None
    decided_at: Optional[int] = None
    classified_as: str = ""  # "mandatory" | "optional" | "skipped"
    flexibility_degree: Optional[int] = None

    @property
    def effective(self) -> bool:
        return self.outcome is JobOutcome.EFFECTIVE


class ExecutionTrace:
    """Complete record of one simulation run.

    Adjacent segments of the same (task, job, role) on one processor are
    coalesced as they are recorded, so a long uninterrupted execution
    crossing many event boundaries costs O(preemptions) segments rather
    than O(events).
    """

    def __init__(self, processor_count: int = 2) -> None:
        if processor_count < 1:
            raise SimulationError("need at least one processor")
        self.processor_count = processor_count
        self._segments: List[Segment] = []
        self.events: List[TraceEvent] = []
        self.records: Dict[Tuple[int, int], LogicalJobRecord] = {}
        # Each processor's still-growing tail interval, the only
        # coalescing candidate: [start, end, task_index, job_index, role,
        # speed] (role as the enum member -- its ``.value`` is resolved
        # only when the interval is sealed into a Segment).  Extending a
        # run is then one integer store instead of a frozen-dataclass
        # construction.
        self._open: List[Optional[list]] = [None] * processor_count

    # -- recording ---------------------------------------------------------

    def add_segment(self, processor: int, start: int, end: int, job: Job) -> None:
        """Record that ``job`` ran on ``processor`` during [start, end)."""
        if start == end:
            return
        tail = self._open[processor]
        if tail is not None:
            if (
                tail[1] == start
                and tail[2] == job.task_index
                and tail[3] == job.job_index
                and tail[4] is job.role
                and tail[5] == job.speed
            ):
                tail[1] = end
                return
            self._seal(processor, tail)
        self._open[processor] = [
            start, end, job.task_index, job.job_index, job.role, job.speed,
        ]

    def _seal(self, processor: int, tail: list) -> None:
        self._segments.append(
            Segment(
                processor=processor,
                start=tail[0],
                end=tail[1],
                task_index=tail[2],
                job_index=tail[3],
                role=tail[4].value,
                speed=tail[5],
            )
        )

    @property
    def segments(self) -> List[Segment]:
        """All recorded segments (coalesced), in recording order."""
        opens = self._open
        for processor in range(self.processor_count):
            tail = opens[processor]
            if tail is not None:
                self._seal(processor, tail)
                opens[processor] = None
        return self._segments

    def log(self, time: int, kind: str, detail: str) -> None:
        """Append a trace event."""
        self.events.append(TraceEvent(time=time, kind=kind, detail=detail))

    def record_for(self, key: Tuple[int, int]) -> LogicalJobRecord:
        """The logical-job record for (task_index, job_index); must exist."""
        try:
            return self.records[key]
        except KeyError as exc:
            raise SimulationError(f"no logical job record for {key}") from exc

    # -- queries -----------------------------------------------------------

    def segments_on(self, processor: int) -> List[Segment]:
        """Segments of one processor, in chronological order."""
        return sorted(
            (s for s in self.segments if s.processor == processor),
            key=lambda s: s.start,
        )

    def busy_ticks(
        self,
        processor: Optional[int] = None,
        window: Optional[Tuple[int, int]] = None,
    ) -> int:
        """Total execution ticks, optionally per processor and windowed."""
        total = 0
        for segment in self.segments:
            if processor is not None and segment.processor != processor:
                continue
            if window is None:
                total += segment.length
            else:
                total += segment.overlap_with(*window)
        return total

    def idle_gaps(
        self, processor: int, window: Tuple[int, int]
    ) -> List[Tuple[int, int]]:
        """Maximal idle intervals of a processor inside ``window``."""
        window_start, window_end = window
        gaps: List[Tuple[int, int]] = []
        cursor = window_start
        for segment in self.segments_on(processor):
            seg_start = max(segment.start, window_start)
            seg_end = min(segment.end, window_end)
            if seg_end <= cursor:
                continue
            if seg_start > cursor:
                gaps.append((cursor, min(seg_start, window_end)))
            cursor = max(cursor, seg_end)
            if cursor >= window_end:
                break
        if cursor < window_end:
            gaps.append((cursor, window_end))
        return [gap for gap in gaps if gap[1] > gap[0]]

    def validate(self) -> None:
        """Assert trace invariants: no overlapping segments per processor.

        Tracks the running *maximum* end over the start-sorted segments:
        remembering only the previous segment's end would let a segment
        nested inside an earlier, longer one reset the watermark and hide
        a later overlap.

        Raises:
            SimulationError: when two segments on one processor overlap.
        """
        for processor in range(self.processor_count):
            max_end = None
            for segment in self.segments_on(processor):
                if max_end is not None and segment.start < max_end:
                    raise SimulationError(
                        f"overlapping segments on processor {processor} at "
                        f"tick {segment.start}"
                    )
                if max_end is None or segment.end > max_end:
                    max_end = segment.end

    def outcomes_for_task(self, task_index: int) -> List[bool]:
        """Per-job effectiveness flags of one task, in job order."""
        keys = sorted(k for k in self.records if k[0] == task_index)
        return [self.records[k].effective for k in keys]

    def __repr__(self) -> str:
        return (
            f"ExecutionTrace(segments={len(self.segments)}, "
            f"records={len(self.records)}, events={len(self.events)})"
        )
