"""Cycle ledger and fold arithmetic for the cycle-folding fast path.

When the engine detects that its canonical state at one hyperperiod
boundary equals the state at a later boundary (see
:mod:`repro.sim.snapshot`), the schedule between the two boundaries --
one *cycle* -- repeats verbatim until the horizon.  Folding then means:

1. add ``r`` times the per-cycle delta to every cumulative counter
   (:meth:`RunStats.fold`), where the delta is measured between the two
   matching boundaries and ``r`` is the number of whole cycles skipped;
2. translate the live dynamic state ``r * cycle`` ticks into the future
   (:func:`shift_state`) so exact simulation resumes for the residual
   partial cycle.

Both steps are exact, not approximate: the counters are integers (gap
*lengths* are bucketed, and the downstream energy arithmetic over the
buckets is :class:`~fractions.Fraction`-exact and order-independent),
and the state translation is a bijection, so a folded run's
:class:`~repro.sim.engine.SimulationResult` is bit-identical to the
unfolded run's.
"""

from __future__ import annotations

from typing import Dict, List, Sequence

from .snapshot import EV_DEADLINE, EV_ENQUEUE


class RunStats:
    """Cumulative, foldable counters of one stats-only run.

    Everything in here is part of the run's *ledger* -- monotone counts
    that grow cycle by cycle -- as opposed to the dynamic state captured
    by :mod:`repro.sim.snapshot`.  ``fold`` advances the ledger by ``r``
    copies of the per-cycle delta.

    Attributes:
        busy: per-processor execution ticks inside [0, horizon).
        gap_counts: per-processor multiset of *closed* idle-gap lengths,
            as a length -> count dict (the energy model only needs each
            gap's length, not its position).
        speed_busy: per-processor speed -> execution-tick dict for
            DVFS-scaled execution (speed != 1 only; full-speed ticks are
            ``busy`` minus the scaled sum).  Empty on every non-DVFS
            run, so the ledger stays byte-identical to the pre-DVFS one.
        released / effective / missed / mandatory / optional_executed /
            skipped: logical-job counts matching
            :class:`~repro.qos.metrics.QoSMetrics`.
        violations: per-task count of violated (m,k) windows.
    """

    __slots__ = (
        "busy",
        "gap_counts",
        "speed_busy",
        "released",
        "effective",
        "missed",
        "mandatory",
        "optional_executed",
        "skipped",
        "violations",
    )

    def __init__(self, task_count: int) -> None:
        self.busy: List[int] = [0, 0]
        self.gap_counts: List[Dict[int, int]] = [{}, {}]
        self.speed_busy: List[dict] = [{}, {}]
        self.released = 0
        self.effective = 0
        self.missed = 0
        self.mandatory = 0
        self.optional_executed = 0
        self.skipped = 0
        self.violations: List[int] = [0] * task_count

    def copy(self) -> "RunStats":
        """An independent snapshot of the ledger (the fold baseline)."""
        dup = RunStats.__new__(RunStats)
        dup.busy = list(self.busy)
        dup.gap_counts = [dict(counts) for counts in self.gap_counts]
        dup.speed_busy = [dict(counts) for counts in self.speed_busy]
        dup.released = self.released
        dup.effective = self.effective
        dup.missed = self.missed
        dup.mandatory = self.mandatory
        dup.optional_executed = self.optional_executed
        dup.skipped = self.skipped
        dup.violations = list(self.violations)
        return dup

    def fold(self, base: "RunStats", cycles: int) -> None:
        """Advance the ledger by ``cycles`` copies of (self - base).

        ``base`` is the ledger as it stood at the first of the two
        matching boundaries; ``self`` holds the values at the second.
        Counters only grow, so every delta is >= 0 and every gap length
        present in ``base`` is present here too.
        """
        r = cycles
        # Lists are mutated in place: the engine's hot loop holds direct
        # references to ``busy`` and ``gap_counts``.
        for processor in (0, 1):
            self.busy[processor] += (
                self.busy[processor] - base.busy[processor]
            ) * r
        for mine, theirs in zip(self.gap_counts, base.gap_counts):
            for length, count in mine.items():
                delta = count - theirs.get(length, 0)
                if delta:
                    mine[length] = count + delta * r
        for mine, theirs in zip(self.speed_busy, base.speed_busy):
            for speed, ticks in mine.items():
                delta = ticks - theirs.get(speed, 0)
                if delta:
                    mine[speed] = ticks + delta * r
        self.released += (self.released - base.released) * r
        self.effective += (self.effective - base.effective) * r
        self.missed += (self.missed - base.missed) * r
        self.mandatory += (self.mandatory - base.mandatory) * r
        self.optional_executed += (
            self.optional_executed - base.optional_executed
        ) * r
        self.skipped += (self.skipped - base.skipped) * r
        for index in range(len(self.violations)):
            self.violations[index] += (
                self.violations[index] - base.violations[index]
            ) * r


def shift_state(
    shift: int,
    rel_shifts: Sequence[int],
    heap: List[tuple],
    mjq,
    ojq,
    current,
    sticky,
    pending,
    logical: Dict[tuple, object],
) -> None:
    """Translate the engine's live dynamic state ``shift`` ticks forward.

    ``rel_shifts[i]`` is the number of jobs task ``i`` releases per
    folded span (``shift // period_i``); job indices advance by it so
    the resumed simulation's identities line up with the unfolded run's.

    Mutates everything in place.  Job objects are shared by the queues,
    slots, pending sets, heap events, and logical entries, so each one
    is touched exactly once via its logical entry; the identity-keyed
    containers (pending sets, current/sticky slots) need no rebuild,
    while the key-ordered containers (ready queues, the logical dict)
    are re-keyed.  The event heap keeps its ordering under a uniform
    time shift, so it is rewritten entry by entry without re-heapifying.
    """
    # Every logical job that can still influence the run is reachable
    # through a pending deadline event or a live copy; anything else is
    # inert and dropped from the dict (its key would otherwise go stale).
    referenced: Dict[tuple, object] = {}
    for _time, kind, _seq, a, b in heap:
        if kind == EV_DEADLINE:
            referenced[(a, b)] = logical[(a, b)]
        elif kind == EV_ENQUEUE and not a.is_finished:
            referenced[a.key()] = logical[a.key()]
    for processor in (0, 1):
        for queue in (mjq[processor], ojq[processor]):
            for job in queue.live_jobs():
                referenced[job.key()] = logical[job.key()]
        for slot in (current, sticky):
            job = slot[processor]
            if job is not None and not job.is_finished:
                referenced[job.key()] = logical[job.key()]
        for job in pending[processor]:
            if not job.is_finished:
                referenced[job.key()] = logical[job.key()]

    for entry in referenced.values():
        for copy in entry.copies:
            copy.release += shift
            copy.deadline += shift
            copy.enqueue_time += shift
            if copy.completion_time is not None:
                copy.completion_time += shift
            if copy.started_at is not None:
                copy.started_at += shift
            copy.job_index += rel_shifts[copy.task_index]
            key = copy.queue_key
            if len(key) == 2:
                copy.queue_key = (copy.task_index, copy.job_index)
            else:
                copy.queue_key = (key[0], copy.task_index, copy.job_index)

    logical.clear()
    for (task, job_index), entry in referenced.items():
        logical[(task, job_index + rel_shifts[task])] = entry

    heap[:] = [
        (
            time + shift,
            kind,
            seq,
            a,
            b + rel_shifts[a] if kind == EV_DEADLINE else b,
        )
        for time, kind, seq, a, b in heap
    ]

    for processor in (0, 1):
        mjq[processor].rekey_live()
        ojq[processor].rekey_live()
