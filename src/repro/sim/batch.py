"""Batch simulation kernel: many independent runs in lockstep over arrays.

The scalar engine (:mod:`repro.sim.engine`) interprets one simulation at
a time through Python objects -- heap events, ready queues, job copies.
A utilization sweep runs hundreds of such simulations that differ only
in data (task set, scheme profile, fault draw), which makes them a
textbook candidate for array programming: this module advances a whole
*batch* of simulations together, one numpy operation per state-machine
step, with each simulation stepping to its **own** next event time every
iteration (the batch is lockstep in iteration count, not in simulated
time).

Array layout
------------

State lives in ``[S, N]`` int64 arrays (``S`` simulations, ``N`` the
largest task count, padded), mirroring the scalar engine's per-run
structures:

* at most one undecided logical job per task at any instant, so per-task
  *columns* suffice: ``cur_dl`` holds the undecided job's absolute
  deadline (``INF`` = decided / none);
* each logical job has at most two copies -- copy *A* (the MAIN, or the
  single OPTIONAL) and copy *B* (the BACKUP) -- stored as parallel
  ``enqueue/remaining/processor`` columns;
* per-processor dispatch state is an ``[S, 2]`` pair of column vectors
  (running task, its completion time), reusing the
  :class:`~repro.sim.folding.RunStats` ledger layout for busy ticks and
  the idle-gap multiset;
* (m,k) histories are packed into plain integers, bit 0 = newest
  outcome: the flexibility-degree window keeps the newest ``k - 1``
  outcomes and the violation tracker the newest ``k`` -- the same
  (mask, length) encoding the scalar engine's tracker uses, so both
  kernels walk literally the same integer sequences.

Equivalence contract
--------------------

Results must be **bit-identical** to the scalar engine's stats-only
mode.  The iteration order mirrors the engine's total order at a tick
``T``:  completions (processor 0 then 1) -> permanent fault ->
deadlines -> releases -> dispatch.  Two deliberate reorderings are
proven safe (see tests/property/test_prop_batch.py):

* *skipped* jobs are decided missed at their release instead of at
  their deadline event; per-task decide order is preserved because the
  previous job's deadline is at most this release and deadline events
  precede releases at the same tick;
* *infeasible* optionals are decided missed at their deadline instead
  of at the first pick that would have dropped them; both instants lie
  strictly before the task's next release, so every flexibility-degree
  read sees the same history either way.

Fallback rules
--------------

A simulation is batchable when its policy publishes a
:class:`~repro.sim.batch_profile.BatchProfile` (after ``prepare``), its
fault scenario cannot produce transient faults, no execution-time model
is set, and every ``k`` fits the packed-window encoding.  Anything else
returns None from :func:`build_batch_item` and runs on the scalar
engine -- correctness never depends on batchability.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Tuple

from ..errors import ConfigurationError
from ..model.history import (
    MKHistory,
    make_initial_history,
    packed_initial_window,
)
from ..model.taskset import TaskSet
from ..timebase import TimeBase
from .batch_profile import BatchProfile
from .engine import (
    PRIMARY,
    PolicyContext,
    SimulationError,
    SimulationResult,
)
from .folding import RunStats
from .timeline import ReleaseTimeline

try:  # pragma: no cover - import success is the normal path
    import numpy as _np
except ImportError:  # pragma: no cover - exercised via a stubbed import
    _np = None

#: Sentinel "never" tick; far above any horizon yet safe to add small
#: offsets to without overflowing int64.
INF = 1 << 62

#: Largest (m,k) window depth the packed-integer histories support; a
#: task beyond it falls back to the scalar engine (generated workloads
#: cap k at 20).
MAX_PACKED_K = 60


def numpy_available() -> bool:
    """True when the numpy the batch kernel needs is importable."""
    return _np is not None


def require_numpy():
    """Return numpy or raise a :class:`ConfigurationError` telling the
    user how to get the batch backend (or how to avoid needing it)."""
    if _np is None:
        raise ConfigurationError(
            "the batch backend requires numpy, which is not installed; "
            "install it with 'pip install repro[batch]' or rerun with "
            "--backend pool"
        )
    return _np


def _popcount(np, values):
    """Per-element population count of non-negative int64 values."""
    if hasattr(np, "bitwise_count"):  # numpy >= 2.0
        return np.bitwise_count(values).astype(np.int64)
    # Shift-add fallback (no multiply, so no uint64 wraparound games);
    # valid for values < 2**62, far above MAX_PACKED_K bits.
    m1 = np.int64(0x5555555555555555)
    m2 = np.int64(0x3333333333333333)
    m4 = np.int64(0x0F0F0F0F0F0F0F0F)
    x = values.astype(np.int64, copy=True)
    x = x - ((x >> 1) & m1)
    x = (x & m2) + ((x >> 2) & m2)
    x = (x + (x >> 4)) & m4
    x = x + (x >> 8)
    x = x + (x >> 16)
    x = x + (x >> 32)
    return x & np.int64(0x7F)


@dataclass
class BatchItem:
    """One batchable simulation: workload, profile, and run parameters.

    Produced by :func:`build_batch_item`; consumed by :func:`run_batch`.
    ``power_model`` rides along so :func:`run_batch_payloads` can account
    energy exactly like the scalar sweep worker.
    """

    taskset: TaskSet
    scheme: str
    policy_name: str
    profile: BatchProfile
    horizon_ticks: int
    timebase: TimeBase
    timeline: ReleaseTimeline
    permanent: Optional[Tuple[int, int]]
    power_model: object = None
    initial_history: str = "met"


def build_batch_item(
    taskset: TaskSet,
    scheme: str,
    scenario=None,
    horizon_cap_units: int = 2000,
    power_model=None,
    release_model=None,
    initial_history: str = "met",
    dvfs=None,
) -> Optional[BatchItem]:
    """Resolve one sweep job into a :class:`BatchItem`, or None.

    Mirrors :func:`repro.harness.runner.run_scheme`'s setup exactly --
    same cached horizon, same shared release timeline, same scenario
    materialization (which is pure, so a scalar fallback re-materializes
    identical faults).  Returns None whenever the job must run on the
    scalar engine: transient faults possible, a non-periodic release
    model (the kernel's lockstep release tables assume the periodic
    recurrence), a DVFS config applying to this scheme (the kernel's
    lockstep arrays know nothing of per-task stretched budgets), no
    batch profile, or a window too deep to pack.
    """
    if _np is None:
        return None
    if release_model is not None and not release_model.is_periodic():
        return None
    if dvfs is not None and dvfs.applies_to(scheme):
        return None
    from ..analysis.cache import analysis_cache
    from ..analysis.hyperperiod import analysis_horizon
    from ..errors import UnknownSchemeError
    from ..faults.scenario import FaultScenario
    from ..harness.runner import SCHEME_FACTORIES
    from .timeline import shared_release_timeline

    try:
        factory = SCHEME_FACTORIES[scheme]
    except KeyError as exc:
        raise UnknownSchemeError(
            f"unknown scheme {scheme!r}; known: {sorted(SCHEME_FACTORIES)}"
        ) from exc
    if any(task.mk.k > MAX_PACKED_K for task in taskset):
        return None
    base = taskset.timebase()
    horizon = analysis_cache().get(
        (
            "horizon",
            taskset.fingerprint(),
            base.ticks_per_unit,
            horizon_cap_units,
        ),
        lambda: analysis_horizon(taskset, base, horizon_cap_units),
    )
    scenario = scenario if scenario is not None else FaultScenario.none()
    transient, permanent = scenario.materialize(horizon, base)
    if not getattr(transient, "never_faults", False):
        return None
    policy = factory()
    histories = [
        make_initial_history(task.mk, initial_history) for task in taskset
    ]
    ctx = PolicyContext(
        taskset=taskset,
        timebase=base,
        horizon_ticks=horizon,
        histories=histories,
    )
    policy.prepare(ctx)
    profile = policy.batch_profile(ctx)
    if profile is None or len(profile.tasks) != len(taskset):
        return None
    for task, task_profile in zip(taskset, profile.tasks):
        if task_profile.classification == "pattern" and len(
            task_profile.pattern_window
        ) != task.mk.k:
            return None
    timeline = shared_release_timeline(taskset, horizon, base)
    return BatchItem(
        taskset=taskset,
        scheme=scheme,
        policy_name=policy.name,
        profile=profile,
        horizon_ticks=horizon,
        timebase=base,
        timeline=timeline,
        permanent=permanent,
        power_model=power_model,
        initial_history=initial_history,
    )


def run_batch(
    items: List[BatchItem],
    progress: Optional[Callable[[int, int], None]] = None,
) -> List[SimulationResult]:
    """Advance every item to completion in lockstep; one result each.

    ``progress(done, total)`` is invoked whenever the number of finished
    simulations grows (and once at the end).
    """
    np = require_numpy()
    if not items:
        return []
    kernel = _Kernel(np, items)
    kernel.run(progress)
    return kernel.finalize()


def run_batch_payloads(
    items: List[BatchItem],
    progress: Optional[Callable[[int, int], None]] = None,
) -> List[Tuple[float, int, int]]:
    """Sweep-worker payloads ``(energy, violations, cycles_folded)``.

    Identical to what :func:`repro.harness.sweep._run_one` produces for
    the same jobs -- energy accounted through the Fraction-exact
    counters path, violations through the shared counting definition.
    The batch kernel never folds, so the third element is always 0.
    """
    from ..energy.accounting import energy_of_result
    from ..qos.metrics import collect_metrics

    results = run_batch(items, progress)
    payloads = []
    for item, result in zip(items, results):
        report = energy_of_result(result, model=item.power_model)
        metrics = collect_metrics(result)
        payloads.append((report.total_energy, metrics.mk_violations, 0))
    return payloads


class _Kernel:
    """The packed state and the lockstep advance loop.

    Everything is int64; boolean masks are numpy bool arrays.  The
    simulated-time semantics is exactly the scalar engine's -- comments
    below reference the equivalent engine step where the mapping is not
    obvious.
    """

    def __init__(self, np, items: List[BatchItem]) -> None:
        self.np = np
        self.items = items
        S = len(items)
        N = max(len(item.taskset) for item in items)
        self.S = S
        self.N = N

        i64 = np.int64
        full = lambda fill: np.full((S, N), fill, dtype=i64)  # noqa: E731
        zeros = lambda: np.zeros((S, N), dtype=i64)  # noqa: E731

        # -- static workload / profile tables ---------------------------
        self.valid = np.zeros((S, N), dtype=bool)
        self.period = full(INF)
        self.dl_rel = zeros()
        self.wcet = zeros()
        self.m_arr = np.ones((S, N), dtype=i64)
        self.k_arr = np.ones((S, N), dtype=i64)
        self.is_fd = np.zeros((S, N), dtype=bool)
        self.pat_mask = zeros()
        self.fd_max = zeros()
        self.main_proc = zeros()
        self.has_backup = np.zeros((S, N), dtype=bool)
        self.backup_off = zeros()
        self.opt_proc = zeros()
        self.alt_opt = np.zeros((S, N), dtype=bool)
        self.pf_off = np.zeros((S, N, 2), dtype=i64)
        self.pf_opt = np.zeros((S, N), dtype=bool)
        self.sticky_sim = np.zeros(S, dtype=bool)
        self.horizon = np.zeros(S, dtype=i64)
        self.task_count = np.zeros(S, dtype=i64)
        self.fault_proc = np.full(S, -1, dtype=i64)
        self.fault_tick = np.full(S, INF, dtype=i64)

        max_k = 1
        # Workload columns (tick conversions, (m,k) parameters) depend
        # only on (taskset, timebase); the same taskset appears once per
        # scheme x scenario, so cache the converted rows by identity.
        ts_cache: Dict[Tuple[int, int], Tuple[list, list, list, list, list]] = {}
        for s, item in enumerate(items):
            base = item.timebase
            self.horizon[s] = item.horizon_ticks
            self.task_count[s] = len(item.taskset)
            self.sticky_sim[s] = item.profile.sticky_optionals
            if item.permanent is not None:
                self.fault_proc[s] = item.permanent[0]
                self.fault_tick[s] = item.permanent[1]
            n = len(item.taskset)
            ts_key = (id(item.taskset), base.ticks_per_unit)
            cached = ts_cache.get(ts_key)
            if cached is None:
                cached = (
                    [base.to_ticks(t.period) for t in item.taskset],
                    [base.to_ticks(t.deadline) for t in item.taskset],
                    [base.to_ticks(t.wcet) for t in item.taskset],
                    [t.mk.m for t in item.taskset],
                    [t.mk.k for t in item.taskset],
                )
                ts_cache[ts_key] = cached
            per, dlr, wc, ms, ks = cached
            self.valid[s, :n] = True
            self.period[s, :n] = per
            self.dl_rel[s, :n] = dlr
            self.wcet[s, :n] = wc
            self.m_arr[s, :n] = ms
            self.k_arr[s, :n] = ks
            max_k = max(max_k, max(ks, default=1))
            for i, prof in enumerate(item.profile.tasks):
                if prof.classification == "fd":
                    self.is_fd[s, i] = True
                    self.fd_max[s, i] = prof.fd_max
                else:
                    mask = 0
                    for bit, mandatory in enumerate(prof.pattern_window):
                        if mandatory:
                            mask |= 1 << bit
                    self.pat_mask[s, i] = mask
                self.main_proc[s, i] = prof.main_processor
                if prof.backup_offset is not None:
                    self.has_backup[s, i] = True
                    self.backup_off[s, i] = prof.backup_offset
                self.opt_proc[s, i] = prof.optional_processor
                self.alt_opt[s, i] = prof.alternate_optionals
                self.pf_off[s, i, 0] = prof.postfault_main_offset[0]
                self.pf_off[s, i, 1] = prof.postfault_main_offset[1]
                self.pf_opt[s, i] = prof.postfault_optionals
        self.kmask = (np.int64(1) << self.k_arr) - np.int64(1)
        self.fdmask = (np.int64(1) << (self.k_arr - 1)) - np.int64(1)
        self.max_k = max_k
        self.survivor = np.where(self.fault_proc >= 0, 1 - self.fault_proc, 0)

        # -- shared release timelines (deduplicated) --------------------
        unique: Dict[int, int] = {}
        rows: List[ReleaseTimeline] = []
        self.tl_of = np.zeros(S, dtype=i64)
        for s, item in enumerate(items):
            key = id(item.timeline)
            if key not in unique:
                unique[key] = len(rows)
                rows.append(item.timeline)
            self.tl_of[s] = unique[key]
        lmax = max((len(tl.ticks) for tl in rows), default=0)
        self.rel_t = np.full((len(rows), lmax + 1), INF, dtype=i64)
        self.rel_task = np.zeros((len(rows), lmax + 1), dtype=i64)
        self.rel_job = np.zeros((len(rows), lmax + 1), dtype=i64)
        for u, tl in enumerate(rows):
            n = len(tl.ticks)
            if n:
                self.rel_t[u, :n] = tl.ticks
                self.rel_task[u, :n] = tl.tasks
                self.rel_job[u, :n] = tl.jobs
        self.cursor = np.zeros(S, dtype=i64)
        self.rel_next = self.rel_t[self.tl_of, 0]
        self.max_iterations = 8 * (lmax + 2) + 64

        # -- dynamic state ----------------------------------------------
        self.now = np.zeros(S, dtype=i64)
        self.alive = np.ones((S, 2), dtype=bool)
        self.fault_mode = np.zeros(S, dtype=bool)
        self.cur_dl = full(INF)
        # Copy enqueue ticks live in one [S, 2, N] block so the
        # next-event scan can min-reduce A and B copies in one pass;
        # a_enq/b_enq are writable views of it.
        self.ab_enq = np.full((S, 2, N), INF, dtype=i64)
        self.a_enq = self.ab_enq[:, 0, :]
        self.b_enq = self.ab_enq[:, 1, :]
        self.enq_flat = self.ab_enq.reshape(S, 2 * N)
        self.a_rem = zeros()
        self.a_proc = zeros()
        self.a_opt = np.zeros((S, N), dtype=bool)
        self.a_fd = zeros()
        self.a_key = zeros()
        self.b_rem = zeros()
        self.b_proc = zeros()
        self.run_task = np.full((S, 2), -1, dtype=i64)
        self.run_b = np.zeros((S, 2), dtype=bool)
        self.run_end = np.full((S, 2), INF, dtype=i64)
        self.sticky_task = np.full((S, 2), -1, dtype=i64)
        # Histories seed from each item's boundary condition; the default
        # all-met window is exactly the full k-1-bit mask.
        self.fd_win = self.fdmask.copy()
        for s, item in enumerate(items):
            if item.initial_history != "met":
                for t, task in enumerate(item.taskset):
                    self.fd_win[s, t] = packed_initial_window(
                        task.mk, item.initial_history
                    )
        self.tr_win = zeros()
        self.tr_cnt = zeros()
        self.violations = zeros()
        self.next_opt = np.full((S, N), PRIMARY, dtype=i64)
        self.released_c = np.zeros(S, dtype=i64)
        self.effective_c = np.zeros(S, dtype=i64)
        self.missed_c = np.zeros(S, dtype=i64)
        self.mandatory_c = np.zeros(S, dtype=i64)
        self.optional_c = np.zeros(S, dtype=i64)
        self.skipped_c = np.zeros(S, dtype=i64)
        self.busy = np.zeros((S, 2), dtype=i64)
        self.gap_cursor = np.zeros((S, 2), dtype=i64)
        self.window_end = np.stack([self.horizon, self.horizon], axis=1)
        # Closed idle gaps, recorded as (sim_rows, processors, lengths)
        # array chunks and aggregated into per-sim multisets at finalize.
        self.gap_chunks: List[Tuple[object, object, object]] = []
        self.col = np.arange(N, dtype=i64)
        self.colrow = self.col[None, :]
        self.sim_ix = np.arange(S, dtype=i64)
        self.simN = self.sim_ix * N
        self.fd_shifts = np.arange(max(self.max_k - 1, 1), dtype=i64)
        self.any_sticky = bool(self.sticky_sim.any())
        # Processor axis for the [2, S, N] dual-dispatch op set, plus the
        # matching flat [2, S] gather base (p * S * N + sim * N).
        self.proc_axis = np.arange(2, dtype=i64).reshape(2, 1, 1)
        self.p_simN = (
            np.arange(2, dtype=i64) * (S * N)
        )[:, None] + self.simN[None, :]
        # Flat (1-D) views over the C-contiguous [S, N] state: `take` and
        # fancy stores on flat indices (row * N + task) are markedly
        # cheaper than 2-D fancy indexing in the hot loop.  ``ab_enq``
        # flattens to row * 2N + task (A copy) / + N (B copy).
        self.is_fd_f = self.is_fd.reshape(-1)
        self.k_arr_f = self.k_arr.reshape(-1)
        self.m_arr_f = self.m_arr.reshape(-1)
        self.kmask_f = self.kmask.reshape(-1)
        self.fdmask_f = self.fdmask.reshape(-1)
        self.pat_mask_f = self.pat_mask.reshape(-1)
        self.fd_max_f = self.fd_max.reshape(-1)
        self.pf_opt_f = self.pf_opt.reshape(-1)
        self.dl_rel_f = self.dl_rel.reshape(-1)
        self.wcet_f = self.wcet.reshape(-1)
        self.main_proc_f = self.main_proc.reshape(-1)
        self.has_backup_f = self.has_backup.reshape(-1)
        self.backup_off_f = self.backup_off.reshape(-1)
        self.opt_proc_f = self.opt_proc.reshape(-1)
        self.alt_opt_f = self.alt_opt.reshape(-1)
        self.pf_off_f = self.pf_off.reshape(-1)
        self.next_opt_f = self.next_opt.reshape(-1)
        self.cur_dl_f = self.cur_dl.reshape(-1)
        self.enq_1d = self.ab_enq.reshape(-1)
        self.a_rem_f = self.a_rem.reshape(-1)
        self.a_proc_f = self.a_proc.reshape(-1)
        self.a_opt_f = self.a_opt.reshape(-1)
        self.a_fd_f = self.a_fd.reshape(-1)
        self.a_key_f = self.a_key.reshape(-1)
        self.b_rem_f = self.b_rem.reshape(-1)
        self.b_proc_f = self.b_proc.reshape(-1)
        self.tr_win_f = self.tr_win.reshape(-1)
        self.tr_cnt_f = self.tr_cnt.reshape(-1)
        self.fd_win_f = self.fd_win.reshape(-1)
        self.violations_f = self.violations.reshape(-1)
        self.run_task_f = self.run_task.reshape(-1)
        self.run_b_f = self.run_b.reshape(-1)

    # -- history machinery ----------------------------------------------

    def _decide(self, rows, flat, bit) -> None:
        """Record the outcome of one undecided logical job per pair.

        ``flat`` is ``rows * N + task``; (sim, task) pairs are unique
        within a call, while ``rows`` may repeat (several tasks of one
        simulation deciding at one tick).  ``bit`` is 0, 1, or a 0/1
        vector (met / missed may be mixed in one call -- outcome state
        is per-(sim, task), so the decides commute).
        """
        np = self.np
        if rows.size == 0:
            return
        if isinstance(bit, int):
            inc = np.bincount(rows, minlength=self.S)
            if bit:
                self.effective_c += inc
            else:
                self.missed_c += inc
        else:
            met = bit == 1
            self.effective_c += np.bincount(rows[met], minlength=self.S)
            self.missed_c += np.bincount(rows[~met], minlength=self.S)
        k = self.k_arr_f.take(flat)
        win = ((self.tr_win_f.take(flat) << 1) | bit) & self.kmask_f.take(
            flat
        )
        cnt = np.minimum(self.tr_cnt_f.take(flat) + 1, k)
        self.tr_win_f[flat] = win
        self.tr_cnt_f[flat] = cnt
        closed = cnt == k
        fc = flat[closed]
        ones = _popcount(np, win[closed])
        bad = ones < self.m_arr_f.take(fc)
        self.violations_f[fc[bad]] += 1
        self.fd_win_f[flat] = (
            (self.fd_win_f.take(flat) << 1) | bit
        ) & self.fdmask_f.take(flat)

    def _flex_degree(self, flat):
        """Vectorized MKHistory.flexibility_degree over packed windows."""
        np = self.np
        win = self.fd_win_f.take(flat)
        m = self.m_arr_f.take(flat)
        k = self.k_arr_f.take(flat)
        # bits[:, j] = outcome j+1 steps back (bit 0 = newest); the
        # cumulative sum locates the m-th newest success, exactly
        # MKHistory's position argument p in fd = k - max(p, m).
        bits = (win[:, None] >> self.fd_shifts[None, :]) & 1
        cs = np.cumsum(bits, axis=1)
        found = cs[:, -1] >= m
        p = np.argmax(cs >= m[:, None], axis=1) + 1
        return np.where(found, k - np.maximum(p, m), 0)

    # -- the lockstep loop ----------------------------------------------

    def run(self, progress: Optional[Callable[[int, int], None]]) -> None:
        np = self.np
        S = self.S
        N = self.N
        twoN = 2 * N
        done_reported = 0
        iterations = 0
        while True:
            iterations += 1
            if iterations > self.max_iterations:  # pragma: no cover
                raise SimulationError(
                    "batch kernel failed to converge (iteration cap hit); "
                    "this is a kernel bug -- rerun with --backend pool"
                )
            # 1. Each simulation's own next event time.
            old_now = self.now
            nt = np.minimum(self.run_end[:, 0], self.run_end[:, 1])
            nt = np.minimum(nt, self.rel_next)
            dlmin = self.cur_dl.min(axis=1)
            nt = np.minimum(nt, dlmin)
            ef = self.enq_flat
            nt = np.minimum(
                nt, np.where(ef > old_now[:, None], ef, INF).min(axis=1)
            )
            nt = np.minimum(nt, self.fault_tick)
            act = nt < INF
            if progress is not None:
                done = S - int(act.sum())
                if done > done_reported:
                    done_reported = done
                    progress(done, S)
            if not act.any():
                break
            # 2. Advance running copies to nt; close idle gaps.
            moved = act & (nt > old_now)
            running2 = moved[:, None] & (self.run_task >= 0)
            rr, pp = np.nonzero(running2)
            if rr.size:
                nowc = old_now[:, None]
                start_ok = running2 & (nowc < self.horizon[:, None])
                self.busy += np.where(
                    start_ok,
                    np.minimum(nt, self.horizon)[:, None] - nowc,
                    0,
                )
                gs = self.gap_cursor
                glen = np.minimum(nowc, self.window_end) - gs
                close = running2 & (nowc > gs) & (glen > 0)
                if close.any():
                    crow, cproc = np.nonzero(close)
                    self.gap_chunks.append((crow, cproc, glen[close]))
                self.gap_cursor = np.where(running2, nt[:, None], gs)
                dtv = (nt - old_now)[rr]
                rp = rr * 2 + pp
                tcol = self.run_task_f.take(rp)
                bsel = self.run_b_f.take(rp)
                nb = ~bsel
                rflat = rr * N + tcol
                self.a_rem_f[rflat[nb]] -= dtv[nb]
                self.b_rem_f[rflat[bsel]] -= dtv[bsel]
            self.now = np.where(act, nt, old_now)
            now = self.now
            # 3. Completions, primary first (engine completion order).
            comp2 = (
                act[:, None]
                & (self.run_task >= 0)
                & (self.run_end == now[:, None])
            )
            dec_parts = []
            for p in (0, 1):
                # Re-check the run slot: processor 0's completion cancels
                # a same-tick-completing sibling backup on processor 1
                # (the engine's no-op handle_completion on it).
                rows = np.nonzero(comp2[:, p] & (self.run_task[:, p] >= 0))[0]
                if rows.size == 0:
                    continue
                t = self.run_task[rows, p]
                self.run_task[rows, p] = -1
                self.run_end[rows, p] = INF
                st = self.sticky_task[rows, p]
                self.sticky_task[rows, p] = np.where(st == t, -1, st)
                # Finished copy and its sibling both retire (the engine
                # cancels the unfinished sibling; a same-tick-finished
                # sibling's completion handler is a proven no-op).
                af = rows * twoN + t
                self.enq_1d[af] = INF
                self.enq_1d[af + N] = INF
                op = 1 - p
                sib = self.run_task[rows, op] == t
                srows = rows[sib]
                self.run_task[srows, op] = -1
                self.run_end[srows, op] = INF
                cf = rows * N + t
                und = self.cur_dl_f.take(cf) != INF
                ur, uf = rows[und], cf[und]
                # Clear the deadline NOW (the deadline scan below must
                # not re-decide a job that completed at its deadline
                # tick); the decide itself is deferred and merged with
                # the deadline decides -- the pairs are distinct (a
                # same-task same-tick sibling was filtered by the
                # run-slot re-check above) and outcome state is
                # per-(sim, task), so the decides commute.
                self.cur_dl_f[uf] = INF
                dec_parts.append((ur, uf, 1))
            # 4. Permanent faults (same-tick completions already landed).
            pf = act & (self.fault_tick == now)
            rows = np.nonzero(pf)[0]
            if rows.size:
                dead = self.fault_proc[rows]
                self.alive[rows, dead] = False
                self.fault_mode[rows] = True
                self.window_end[rows, dead] = np.minimum(
                    now[rows], self.horizon[rows]
                )
                self.fault_tick[rows] = INF
                deadcol = dead[:, None]
                self.a_enq[rows] = np.where(
                    self.a_proc[rows] == deadcol, INF, self.a_enq[rows]
                )
                self.b_enq[rows] = np.where(
                    self.b_proc[rows] == deadcol, INF, self.b_enq[rows]
                )
                self.run_task[rows, dead] = -1
                self.run_end[rows, dead] = INF
                self.sticky_task[rows, dead] = -1
            # 5. Deadlines: abandon every unfinished copy (running ones
            # included), then decide missed.  ``dlmin`` predates this
            # tick's completions, which only raise deadlines to INF, so
            # the gate is conservative (may scan and find nothing).
            if (act & (dlmin == nt)).any():
                dmask = act[:, None] & (self.cur_dl == now[:, None])
                rows, ts = np.nonzero(dmask)
            else:
                rows = ts = self.sim_ix[:0]
            if rows.size:
                af = rows * twoN + ts
                self.enq_1d[af] = INF
                self.enq_1d[af + N] = INF
                for p in (0, 1):
                    hit = self.run_task[rows, p] == ts
                    hr = rows[hit]
                    self.run_task[hr, p] = -1
                    self.run_end[hr, p] = INF
                    st = self.sticky_task[rows, p]
                    shit = st == ts
                    self.sticky_task[rows[shit], p] = -1
                nf = rows * N + ts
                self.cur_dl_f[nf] = INF
                dec_parts.append((rows, nf, 0))
            # Merged completion + deadline decides, ahead of the release
            # scan (a same-tick release of the same task must read the
            # updated history).
            if dec_parts:
                if len(dec_parts) == 1:
                    dr, df, b = dec_parts[0]
                    self._decide(dr, df, b)
                else:
                    dr = np.concatenate([part[0] for part in dec_parts])
                    df = np.concatenate([part[1] for part in dec_parts])
                    bits = np.concatenate(
                        [
                            np.full(part[0].size, part[2], dtype=np.int64)
                            for part in dec_parts
                        ]
                    )
                    self._decide(dr, df, bits)
            # 6. Releases.  Same-tick layers are gathered first (cursor
            # walking only), then planned in ONE vectorized round:
            # same-tick releases belong to distinct tasks (periods are
            # at least one tick), and every read a release plan makes is
            # per-(sim, task), so the layers are independent.
            rel = act & (self.rel_next == now)
            if rel.any():
                parts = []
                while True:
                    rows = np.nonzero(rel)[0]
                    if rows.size == 0:
                        break
                    u = self.tl_of[rows]
                    c = self.cursor[rows]
                    parts.append(
                        (rows, self.rel_task[u, c], self.rel_job[u, c])
                    )
                    self.cursor[rows] = c + 1
                    nxt = self.rel_t[u, c + 1]
                    self.rel_next[rows] = nxt
                    rel[rows] = nxt == now[rows]
                if len(parts) == 1:
                    rows, t, j = parts[0]
                else:
                    rows = np.concatenate([part[0] for part in parts])
                    t = np.concatenate([part[1] for part in parts])
                    j = np.concatenate([part[2] for part in parts])
                self._release_round(rows, t, j, now)
            # 7. Dispatch (fresh argmin == engine displacement + pick).
            self._dispatch(now)

    def _release_round(self, rows, t, j, now) -> None:
        np = self.np
        N = self.N
        flat = rows * N + t
        aflat = rows * (2 * N) + t  # A-copy slot in the flat enq block
        enq = self.enq_1d
        rnow = now[rows]
        isf = self.is_fd_f.take(flat)
        fd = self._flex_degree(flat)
        phase = (j - 1) % self.k_arr_f.take(flat)
        pbit = (self.pat_mask_f.take(flat) >> phase) & 1
        mand = np.where(isf, fd == 0, pbit == 1)
        fm = self.fault_mode[rows]
        opt = (
            isf
            & ~mand
            & (fd <= self.fd_max_f.take(flat))
            & (~fm | self.pf_opt_f.take(flat))
        )
        skip = ~(mand | opt)
        # ``rows`` may repeat (several tasks released at one tick), so
        # count through bincount rather than fancy-index increments.
        S = self.S
        self.released_c += np.bincount(rows, minlength=S)
        self.mandatory_c += np.bincount(rows[mand], minlength=S)
        self.optional_c += np.bincount(rows[opt], minlength=S)
        self.skipped_c += np.bincount(rows[skip], minlength=S)
        dl = rnow + self.dl_rel_f.take(flat)
        keep = ~skip
        self.cur_dl_f[flat[keep]] = dl[keep]
        # Skipped jobs decide missed now (engine: at the deadline event;
        # proven order-equivalent, see the module docstring).
        self._decide(rows[skip], flat[skip], 0)
        wc = self.wcet_f.take(flat)
        sv = self.survivor[rows]
        # Mandatory, fault-free: MAIN at release (+ postponed BACKUP).
        sel = mand & ~fm
        fs = flat[sel]
        self.a_rem_f[fs] = wc[sel]
        mp = self.main_proc_f.take(fs)
        self.a_proc_f[fs] = mp
        self.a_opt_f[fs] = False
        enq[aflat[sel]] = rnow[sel]
        hb = self.has_backup_f.take(fs)
        fb = fs[hb]
        enq[aflat[sel][hb] + N] = rnow[sel][hb] + self.backup_off_f.take(fb)
        self.b_rem_f[fb] = wc[sel][hb]
        self.b_proc_f[fb] = 1 - mp[hb]
        # Mandatory, post-fault: single MAIN on the survivor, offset.
        sel = mand & fm
        fs = flat[sel]
        svs = sv[sel]
        enq[aflat[sel]] = rnow[sel] + self.pf_off_f.take(fs * 2 + svs)
        self.a_rem_f[fs] = wc[sel]
        self.a_proc_f[fs] = svs
        self.a_opt_f[fs] = False
        # Optional, fault-free: alternating or pinned processor.
        sel = opt & ~fm
        fs = flat[sel]
        alt = self.alt_opt_f.take(fs)
        nxt = self.next_opt_f.take(fs)
        self.a_proc_f[fs] = np.where(alt, nxt, self.opt_proc_f.take(fs))
        self.next_opt_f[fs] = np.where(alt, 1 - nxt, nxt)
        enq[aflat[sel]] = rnow[sel]
        self.a_rem_f[fs] = wc[sel]
        self.a_opt_f[fs] = True
        fds = fd[sel]
        self.a_fd_f[fs] = fds
        self.a_key_f[fs] = fds * (N + 1) + t[sel]
        # Optional, post-fault: survivor, no alternation flip.
        sel = opt & fm
        fs = flat[sel]
        enq[aflat[sel]] = rnow[sel]
        self.a_rem_f[fs] = wc[sel]
        self.a_proc_f[fs] = sv[sel]
        self.a_opt_f[fs] = True
        fds = fd[sel]
        self.a_fd_f[fs] = fds
        self.a_key_f[fs] = fds * (N + 1) + t[sel]

    def _dispatch(self, now) -> None:
        """Pick both processors' running jobs in one [2, S, N] op set.

        The engine dispatches processor 0 then 1, but the picks are
        independent (every copy is bound to exactly one processor and
        the held-optional slot is per-processor), so both compute
        together; axis 0 is the processor.
        """
        np = self.np
        N = self.N
        S = self.S
        now2 = now[:, None]
        a_live = (self.a_enq <= now2) & (self.a_rem > 0)
        b_live = (self.b_enq <= now2) & (self.b_rem > 0)
        a_feas = now2 + self.a_rem <= self.cur_dl
        pz = self.proc_axis
        # Mandatory candidates: MAIN copies bound here + BACKUP copies
        # bound here; the engine's MJQ orders them by task index (at most
        # one live mandatory copy per task per processor).  A task never
        # has both its copies bound to one processor, so membership in
        # ``bcand`` decides which copy a chosen task runs.
        bcand = b_live[None] & (self.b_proc[None] == pz)
        abound = a_live[None] & (self.a_proc[None] == pz)
        mcand = (abound & ~self.a_opt[None]) | bcand
        # First True along a task row == lowest task index == MJQ head.
        msel = mcand.argmax(axis=2)
        mhas = mcand.any(axis=2)
        # Optional candidates: feasible (can still meet the deadline),
        # ordered by (flexibility degree at release, task index) --
        # ``a_key``, precomputed at release.
        ocand = abound & (self.a_opt & a_feas)[None]
        okey = np.where(ocand, self.a_key[None], INF)
        osel = okey.argmin(axis=2)
        ohas = ocand.any(axis=2)
        if self.any_sticky:
            # A held (sticky) optional resumes ahead of the queue while
            # it stays feasible; it falls out of its slot otherwise.
            st = self.sticky_task.T
            has_st = st >= 0
            if has_st.any():
                st_ix = np.where(has_st, st, 0)
                st_ok = has_st & ocand.take(self.p_simN + st_ix)
                self.sticky_task[:] = np.where(
                    has_st & ~st_ok, -1, st
                ).T
                st = self.sticky_task.T
            else:
                st_ix = st
                st_ok = has_st
            use_st = ~mhas & st_ok
            use_o = ~mhas & ~st_ok & ohas
            chosen = np.where(
                mhas,
                msel,
                np.where(use_st, st_ix, np.where(use_o, osel, -1)),
            )
        else:
            use_o = ~mhas & ohas
            chosen = np.where(mhas, msel, np.where(use_o, osel, -1))
        disp = self.alive.T & (chosen >= 0)
        pr, sr = np.nonzero(disp)
        ct = chosen[pr, sr]
        cflat = sr * N + ct
        isb = mhas[pr, sr] & bcand.take(pr * (S * N) + cflat)
        rem = np.where(
            isb, self.b_rem_f.take(cflat), self.a_rem_f.take(cflat)
        )
        self.run_task.fill(-1)
        self.run_task[sr, pr] = ct
        self.run_b[sr, pr] = isb
        self.run_end.fill(INF)
        self.run_end[sr, pr] = now[sr] + rem
        if self.any_sticky:
            # A freshly dispatched optional becomes the held job under
            # the non-preemptive (sticky) dispatch rule.
            stick = use_o & disp & self.sticky_sim[None, :]
            if stick.any():
                spr, ssr = np.nonzero(stick)
                self.sticky_task[ssr, spr] = chosen[stick]

    # -- results ----------------------------------------------------------

    def finalize(self) -> List[SimulationResult]:
        np = self.np
        # Close the final idle gap of each accounting window (engine
        # end-of-run behaviour: a never-running processor contributes one
        # horizon-long gap).
        glen2 = self.window_end - self.gap_cursor
        last = glen2 > 0
        if last.any():
            lrow, lproc = np.nonzero(last)
            self.gap_chunks.append((lrow, lproc, glen2[last]))
        gap_counts: List[List[Dict[int, int]]] = [
            [{}, {}] for _ in range(self.S)
        ]
        if self.gap_chunks:
            rows = np.concatenate([part[0] for part in self.gap_chunks])
            procs = np.concatenate([part[1] for part in self.gap_chunks])
            lens = np.concatenate([part[2] for part in self.gap_chunks])
            trips, counts = np.unique(
                np.stack([rows, procs, lens]), axis=1, return_counts=True
            )
            for s, p, length, count in zip(
                trips[0].tolist(),
                trips[1].tolist(),
                trips[2].tolist(),
                counts.tolist(),
            ):
                bucket = gap_counts[s][p]
                bucket[length] = bucket.get(length, 0) + count
        results = []
        for s, item in enumerate(self.items):
            n = int(self.task_count[s])
            stats = RunStats(n)
            stats.busy = [int(self.busy[s, 0]), int(self.busy[s, 1])]
            stats.gap_counts = gap_counts[s]
            stats.released = int(self.released_c[s])
            stats.effective = int(self.effective_c[s])
            stats.missed = int(self.missed_c[s])
            stats.mandatory = int(self.mandatory_c[s])
            stats.optional_executed = int(self.optional_c[s])
            stats.skipped = int(self.skipped_c[s])
            stats.violations = [int(v) for v in self.violations[s, :n]]
            results.append(
                SimulationResult(
                    taskset=item.taskset,
                    timebase=item.timebase,
                    horizon_ticks=item.horizon_ticks,
                    policy_name=item.policy_name,
                    trace=None,
                    permanent_fault=item.permanent,
                    transient_fault_count=0,
                    released_jobs=int(self.released_c[s]),
                    stats=stats,
                    busy_by_processor=(
                        int(self.busy[s, 0]),
                        int(self.busy[s, 1]),
                    ),
                    cycles_folded=0,
                    fold_cycle_ticks=0,
                )
            )
        return results
