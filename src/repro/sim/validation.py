"""Independent post-run validation of simulation results.

A second pair of eyes on the engine: given only a
:class:`~repro.sim.engine.SimulationResult` and the task model, these
checks re-derive what *must* hold of any correct standby-sparing schedule
and report every violation.  The property-based engine tests run the
validator on every random schedule, so engine bugs have to get past an
implementation that shares no code with the engine's bookkeeping.

Checked invariants:

* segments on one processor never overlap, and never precede the job's
  release;
* no copy of a job executes past its logical deadline;
* no logical job receives more execution than *two* WCETs total
  (main + backup; recoveries raise the cap via ``max_copies``);
* an effective job really has enough execution recorded to have
  completed at least one copy (>= one WCET of execution);
* a skipped job never executed at all;
* outcome sequences exist for every released job index 1..max without
  gaps.
"""

from __future__ import annotations

from collections import defaultdict
from dataclasses import dataclass
from typing import Dict, List, Tuple

from ..model.job import JobOutcome
from ..sim.engine import SimulationResult


@dataclass(frozen=True)
class ValidationIssue:
    """One violated invariant."""

    kind: str
    detail: str


def validate_result(
    result: SimulationResult, max_copies: int = 2
) -> List[ValidationIssue]:
    """Run all invariant checks; returns the (ideally empty) issue list.

    Args:
        result: a finished simulation.
        max_copies: executions of one logical job may total at most this
            many WCETs (2 for plain standby-sparing; higher when a policy
            schedules recovery copies).
    """
    issues: List[ValidationIssue] = []
    base = result.timebase
    taskset = result.taskset
    wcets = [base.to_ticks(task.wcet) for task in taskset]
    periods = [base.to_ticks(task.period) for task in taskset]
    deadlines = [base.to_ticks(task.deadline) for task in taskset]

    # -- per-processor segment sanity ------------------------------------
    for processor in range(result.trace.processor_count):
        previous_end = None
        for segment in result.trace.segments_on(processor):
            if previous_end is not None and segment.start < previous_end:
                issues.append(
                    ValidationIssue(
                        "overlap",
                        f"processor {processor} segments overlap at "
                        f"{segment.start}",
                    )
                )
            previous_end = segment.end

    # -- per-logical-job execution accounting -----------------------------
    executed: Dict[Tuple[int, int], int] = defaultdict(int)
    first_start: Dict[Tuple[int, int], int] = {}
    last_end: Dict[Tuple[int, int], int] = {}
    for segment in result.trace.segments:
        key = (segment.task_index, segment.job_index)
        executed[key] += segment.length
        first_start[key] = min(
            first_start.get(key, segment.start), segment.start
        )
        last_end[key] = max(last_end.get(key, segment.end), segment.end)

    for key, ticks in executed.items():
        task_index, job_index = key
        release = (job_index - 1) * periods[task_index]
        deadline = release + deadlines[task_index]
        wcet = wcets[task_index]
        if first_start[key] < release:
            issues.append(
                ValidationIssue(
                    "early-start",
                    f"J{task_index + 1},{job_index} started at "
                    f"{first_start[key]} before release {release}",
                )
            )
        if last_end[key] > deadline:
            issues.append(
                ValidationIssue(
                    "late-execution",
                    f"J{task_index + 1},{job_index} executed past its "
                    f"deadline {deadline} (until {last_end[key]})",
                )
            )
        if ticks > max_copies * wcet:
            issues.append(
                ValidationIssue(
                    "over-execution",
                    f"J{task_index + 1},{job_index} executed {ticks} ticks "
                    f"> {max_copies} x WCET {wcet}",
                )
            )

    # -- outcome bookkeeping ----------------------------------------------
    per_task_jobs: Dict[int, List[int]] = defaultdict(list)
    for (task_index, job_index), record in sorted(result.trace.records.items()):
        per_task_jobs[task_index].append(job_index)
        key = (task_index, job_index)
        if record.outcome is None:
            issues.append(
                ValidationIssue(
                    "undecided",
                    f"J{task_index + 1},{job_index} has no outcome",
                )
            )
        elif record.outcome is JobOutcome.EFFECTIVE:
            if executed.get(key, 0) < wcets[task_index]:
                issues.append(
                    ValidationIssue(
                        "phantom-success",
                        f"J{task_index + 1},{job_index} effective with only "
                        f"{executed.get(key, 0)} ticks executed",
                    )
                )
        if record.classified_as == "skipped" and executed.get(key, 0) > 0:
            issues.append(
                ValidationIssue(
                    "skipped-but-ran",
                    f"J{task_index + 1},{job_index} was skipped yet executed",
                )
            )

    for task_index, job_indices in per_task_jobs.items():
        expected = list(range(1, max(job_indices) + 1))
        if job_indices != expected:
            issues.append(
                ValidationIssue(
                    "gap",
                    f"task {task_index + 1} job records are not contiguous: "
                    f"{job_indices}",
                )
            )
    return issues


def assert_valid(result: SimulationResult, max_copies: int = 2) -> None:
    """Raise AssertionError with every issue when validation fails."""
    issues = validate_result(result, max_copies=max_copies)
    assert not issues, "\n".join(f"{i.kind}: {i.detail}" for i in issues)
