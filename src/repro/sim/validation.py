"""Independent post-run validation and scheme-aware conformance auditing.

A second pair of eyes on the engine: given only a
:class:`~repro.sim.engine.SimulationResult` and the task model, these
checks re-derive what *must* hold of any correct standby-sparing schedule
and report every violation.  The property-based engine tests run the
validator on every random schedule, so engine bugs have to get past an
implementation that shares no code with the engine's bookkeeping.

Two layers:

* :func:`validate_result` -- **model-level** invariants that hold for any
  policy: no overlapping segments, no execution before release or past
  the deadline, bounded total execution, effective jobs really executed,
  skipped jobs never ran, no execution after an effective decision
  (backup cancellation), contiguous job records.  On a DVFS run (the
  result carries a :class:`~repro.energy.dvfs.SpeedPlan`) this layer
  also enforces per-segment frequency conformance: pre-fault main
  copies run at exactly the plan's speed, every other copy at full
  speed, and no mandatory segment may execute below the
  feasibility-checked speed (``dvfs-underspeed``).

* :func:`audit_result` -- adds **scheme-level** invariants declared by
  the policy through a :class:`ConformanceSpec` (see
  :meth:`~repro.sim.engine.SchedulingPolicy.conformance`): the paper's
  classification rules (mandatory iff FD = 0 replayed from the outcome
  history, or iff the static pattern says so -- Definition 1 /
  Equation 1), the optional-selection rule (optionals only within the
  scheme's FD window -- Algorithm 1 line 6), backup postponement (no
  backup segment before r̃ = r + θ_i -- Definitions 2-5), post-fault
  release offsets, and fixed-priority queue conformance (no copy runs
  while a strictly higher-priority ready copy of the same queue class
  waits on that processor, and never while a mandatory copy waits).

Separate entry points cover the remaining surfaces:

* :func:`audit_energy` -- DPD legality: an
  :class:`~repro.energy.accounting.EnergyReport` must decompose each
  processor's window exactly as the
  :func:`~repro.energy.dpd.shutdown_decision` rule dictates.  On a DVFS
  run it additionally re-derives the per-speed busy decomposition from
  the run itself and recomputes the active energy from it, bit-exactly.
* :func:`result_ledger` / :func:`compare_ledgers` -- a canonical,
  mode-independent summary of a run, used by the cross-mode differential
  check (trace vs stats-only vs folded runs of the same descriptor must
  agree bit-for-bit).
"""

from __future__ import annotations

from collections import defaultdict
from dataclasses import dataclass
from fractions import Fraction
from typing import Dict, List, Optional, Tuple

from ..energy.accounting import active_energy_of
from ..energy.dpd import shutdown_decision
from ..model.history import (
    MKHistory,
    make_initial_history,
    normalize_initial_history,
)
from ..model.job import JobOutcome, JobRole
from ..model.patterns import Pattern
from ..qos.monitor import verify_mk
from ..sim.engine import PRIMARY, SPARE, SimulationResult

_MAIN = JobRole.MAIN.value
_BACKUP = JobRole.BACKUP.value
_OPTIONAL = JobRole.OPTIONAL.value


@dataclass(frozen=True)
class ValidationIssue:
    """One violated invariant."""

    kind: str
    detail: str


@dataclass(frozen=True)
class TaskConformance:
    """Scheme invariants for one task, declared by the policy.

    Attributes:
        classification: how mandatory jobs are determined -- ``"fd"``
            (mandatory iff the replayed flexibility degree is 0),
            ``"pattern"`` (mandatory iff ``pattern.is_mandatory(j)``), or
            ``"all"`` (every job mandatory).
        pattern: the static pattern, required when classification is
            ``"pattern"``.
        optional_fd_max: optionals may only execute with flexibility
            degree in ``[1, optional_fd_max]``; None means any FD >= 1
            is acceptable; 0 means the scheme never runs optionals.
        backup_offset: ticks past the nominal release before which no
            backup segment of this task may start (the postponement
            r̃ - r); None means the scheme creates no backup copies.
        postfault_main_offset: per-surviving-processor enqueue offset of
            post-fault mandatory releases (index = survivor).
    """

    classification: str
    pattern: Optional[Pattern] = None
    optional_fd_max: Optional[int] = 0
    backup_offset: Optional[int] = None
    postfault_main_offset: Tuple[int, int] = (0, 0)


@dataclass(frozen=True)
class ConformanceSpec:
    """A policy's complete invariant suite for the auditor.

    Attributes:
        scheme: the policy name (for issue messages).
        tasks: one :class:`TaskConformance` per task, in task order.
        optional_preemption: whether a more urgent optional may preempt
            a running optional (mirrors
            :attr:`~repro.sim.engine.SchedulingPolicy.optional_preemption`);
            when False, optional-vs-optional priority checks are skipped
            because a dispatched optional legitimately holds its
            processor.
        max_copies: executions of one logical job may total at most this
            many WCETs (1 for single-copy policies, 2 for
            standby-sparing, 1 + max_recoveries for re-execution).
    """

    scheme: str
    tasks: Tuple[TaskConformance, ...]
    optional_preemption: bool = True
    max_copies: int = 2


def validate_result(
    result: SimulationResult, max_copies: int = 2
) -> List[ValidationIssue]:
    """Run all model-level checks; returns the (ideally empty) issue list.

    Args:
        result: a finished trace-mode simulation.
        max_copies: executions of one logical job may total at most this
            many WCETs (2 for plain standby-sparing; higher when a policy
            schedules recovery copies).
    """
    if result.trace is None:
        raise ValueError(
            "validate_result needs a trace run (collect_trace=True); audit "
            "trace-less runs through the cross-mode differential check"
        )
    issues: List[ValidationIssue] = []
    base = result.timebase
    taskset = result.taskset
    plan = result.speed_plan
    wcets = [base.to_ticks(task.wcet) for task in taskset]
    periods = [base.to_ticks(task.period) for task in taskset]
    deadlines = [base.to_ticks(task.deadline) for task in taskset]

    # -- per-processor segment sanity ------------------------------------
    # Sorted by start with a running *max* end: remembering only the
    # previous segment's end would let a segment nested inside an
    # earlier, longer one reset the watermark and hide a later overlap.
    for processor in range(result.trace.processor_count):
        max_end: Optional[int] = None
        for segment in result.trace.segments_on(processor):
            if max_end is not None and segment.start < max_end:
                issues.append(
                    ValidationIssue(
                        "overlap",
                        f"processor {processor} segments overlap at "
                        f"{segment.start}",
                    )
                )
            if max_end is None or segment.end > max_end:
                max_end = segment.end

    # -- per-logical-job execution accounting -----------------------------
    executed: Dict[Tuple[int, int], int] = defaultdict(int)
    first_start: Dict[Tuple[int, int], int] = {}
    last_end: Dict[Tuple[int, int], int] = {}
    for segment in result.trace.segments:
        key = (segment.task_index, segment.job_index)
        executed[key] += segment.length
        first_start[key] = min(
            first_start.get(key, segment.start), segment.start
        )
        last_end[key] = max(last_end.get(key, segment.end), segment.end)

    for key, ticks in executed.items():
        task_index, job_index = key
        record = result.trace.records.get(key)
        # The record carries the actual release tick; non-periodic
        # release models place job j later than (j - 1) * P.
        release = (
            record.release
            if record is not None
            else (job_index - 1) * periods[task_index]
        )
        deadline = release + deadlines[task_index]
        wcet = wcets[task_index]
        if first_start[key] < release:
            issues.append(
                ValidationIssue(
                    "early-start",
                    f"J{task_index + 1},{job_index} started at "
                    f"{first_start[key]} before release {release}",
                )
            )
        if last_end[key] > deadline:
            issues.append(
                ValidationIssue(
                    "late-execution",
                    f"J{task_index + 1},{job_index} executed past its "
                    f"deadline {deadline} (until {last_end[key]})",
                )
            )
        # A DVFS plan stretches the main copy's budget; every other copy
        # of the job runs at full speed, so the legal total swaps exactly
        # one WCET for the stretched one.
        cap = max_copies * wcet
        if plan is not None:
            cap = (max_copies - 1) * wcet + plan.stretched_wcets[task_index]
        if ticks > cap:
            issues.append(
                ValidationIssue(
                    "over-execution",
                    f"J{task_index + 1},{job_index} executed {ticks} ticks "
                    f"> the {max_copies}-copy budget of {cap}",
                )
            )

    # -- per-segment DVFS frequency conformance ---------------------------
    # Without a plan no segment may carry a scaled speed; with one, the
    # speed of every segment is fully determined: a main copy released
    # while both processors were alive runs at exactly the plan's speed
    # for its task (max-performance fallback reverts post-fault releases
    # to full speed), and every other copy runs at 1.  Independently,
    # no mandatory segment may ever run below the feasibility-checked
    # speed the plan's R-pattern critical-scaling test admitted.
    fault = result.permanent_fault
    fault_tick = fault[1] if fault is not None else None
    for segment in result.trace.segments:
        label = (
            f"J{segment.task_index + 1},{segment.job_index}/{segment.role}"
        )
        if plan is None:
            if segment.speed != 1:
                issues.append(
                    ValidationIssue(
                        "dvfs-speed",
                        f"{label} ran at speed {segment.speed} but the run "
                        f"has no speed plan",
                    )
                )
            continue
        record = result.trace.records.get(
            (segment.task_index, segment.job_index)
        )
        release = (
            record.release
            if record is not None
            else (segment.job_index - 1) * periods[segment.task_index]
        )
        prefault = fault_tick is None or release < fault_tick
        want = plan.speeds[segment.task_index] if (
            segment.role == _MAIN and prefault
        ) else 1
        if segment.speed != want:
            issues.append(
                ValidationIssue(
                    "dvfs-speed",
                    f"{label} ran at speed {segment.speed}, the plan "
                    f"dictates {want}",
                )
            )
        if (
            segment.role != _OPTIONAL
            and segment.speed != 1
            and segment.speed < plan.checked_speed
        ):
            issues.append(
                ValidationIssue(
                    "dvfs-underspeed",
                    f"mandatory segment of {label} ran at speed "
                    f"{segment.speed}, below the feasibility-checked "
                    f"speed {plan.checked_speed}",
                )
            )

    # -- outcome bookkeeping ----------------------------------------------
    per_task_jobs: Dict[int, List[int]] = defaultdict(list)
    for (task_index, job_index), record in sorted(result.trace.records.items()):
        per_task_jobs[task_index].append(job_index)
        key = (task_index, job_index)
        if record.outcome is None:
            issues.append(
                ValidationIssue(
                    "undecided",
                    f"J{task_index + 1},{job_index} has no outcome",
                )
            )
        elif record.outcome is JobOutcome.EFFECTIVE:
            if executed.get(key, 0) < wcets[task_index]:
                issues.append(
                    ValidationIssue(
                        "phantom-success",
                        f"J{task_index + 1},{job_index} effective with only "
                        f"{executed.get(key, 0)} ticks executed",
                    )
                )
            # Backup cancellation: once a copy completes fault-free the
            # logical job is decided and every sibling is canceled on
            # the spot, so no segment of the job may extend past the
            # decision instant (segments ending exactly at it are the
            # deciding copy and concurrent copies cut by the event).
            end = last_end.get(key)
            if (
                record.decided_at is not None
                and end is not None
                and end > record.decided_at
            ):
                issues.append(
                    ValidationIssue(
                        "run-after-success",
                        f"J{task_index + 1},{job_index} executed until "
                        f"{end}, past its effective decision at "
                        f"{record.decided_at}",
                    )
                )
        if record.classified_as == "skipped" and executed.get(key, 0) > 0:
            issues.append(
                ValidationIssue(
                    "skipped-but-ran",
                    f"J{task_index + 1},{job_index} was skipped yet executed",
                )
            )

    for task_index, job_indices in per_task_jobs.items():
        expected = list(range(1, max(job_indices) + 1))
        if job_indices != expected:
            issues.append(
                ValidationIssue(
                    "gap",
                    f"task {task_index + 1} job records are not contiguous: "
                    f"{job_indices}",
                )
            )
    return issues


def audit_result(
    result: SimulationResult,
    spec: Optional[ConformanceSpec] = None,
    max_copies: Optional[int] = None,
    initial_history_met: "str | bool" = True,
) -> List[ValidationIssue]:
    """Model-level checks plus the scheme checks declared by ``spec``.

    Args:
        result: a finished trace-mode simulation.
        spec: the policy's invariant suite (from
            :meth:`~repro.sim.engine.SchedulingPolicy.conformance`); None
            runs only the model-level checks.
        max_copies: override for the execution cap; defaults to
            ``spec.max_copies`` (or 2 without a spec).
        initial_history_met: the (m,k)-history boundary condition the
            audited run used (must match for the FD replay to be exact):
            a mode string or the legacy booleans.
    """
    if max_copies is None:
        max_copies = spec.max_copies if spec is not None else 2
    issues = validate_result(result, max_copies=max_copies)
    if spec is None:
        return issues
    if len(spec.tasks) != len(result.taskset):
        raise ValueError(
            f"spec for {spec.scheme!r} covers {len(spec.tasks)} tasks, "
            f"result has {len(result.taskset)}"
        )
    issues.extend(_audit_classification(result, spec, initial_history_met))
    issues.extend(_audit_offsets(result, spec))
    issues.extend(_audit_priority(result, spec))
    return issues


def _audit_classification(
    result: SimulationResult,
    spec: ConformanceSpec,
    initial_history_met: "str | bool",
) -> List[ValidationIssue]:
    """Replay each task's (m,k)-history and check every classification.

    With constrained deadlines (D <= P, enforced by the task model) and
    the engine's deadline-before-release event order, job j's outcome is
    always decided before job j+1's release, so the flexibility degree
    at each release is exactly the replayed one.
    """
    issues: List[ValidationIssue] = []
    trace = result.trace
    for task_index, task in enumerate(result.taskset):
        tc = spec.tasks[task_index]
        history = make_initial_history(
            task.mk, normalize_initial_history(initial_history_met)
        )
        for key in sorted(k for k in trace.records if k[0] == task_index):
            record = trace.records[key]
            job_index = key[1]
            label = f"J{task_index + 1},{job_index}"
            fd = history.flexibility_degree()
            if (
                record.flexibility_degree is not None
                and record.flexibility_degree != fd
            ):
                issues.append(
                    ValidationIssue(
                        "fd-mismatch",
                        f"{label} recorded FD {record.flexibility_degree}, "
                        f"outcome replay gives {fd}",
                    )
                )
            if tc.classification == "all":
                mandatory_required = True
                rule = "every job is mandatory"
            elif tc.classification == "pattern":
                mandatory_required = tc.pattern.is_mandatory(job_index)
                rule = f"pattern bit for job {job_index}"
            else:
                mandatory_required = fd == 0
                rule = f"replayed FD {fd}"
            classified = record.classified_as
            if mandatory_required and classified != "mandatory":
                issues.append(
                    ValidationIssue(
                        "mandatory-rule",
                        f"{label} classified {classified!r} but must be "
                        f"mandatory ({rule})",
                    )
                )
            elif not mandatory_required and classified == "mandatory":
                issues.append(
                    ValidationIssue(
                        "mandatory-rule",
                        f"{label} classified mandatory but must not be "
                        f"({rule})",
                    )
                )
            if classified == "optional":
                limit = tc.optional_fd_max
                allowed = (
                    fd >= 1
                    and limit != 0
                    and (limit is None or fd <= limit)
                )
                if not allowed:
                    issues.append(
                        ValidationIssue(
                            "optional-fd",
                            f"{label} executed as optional at FD {fd}; "
                            f"{spec.scheme} only runs optionals with FD in "
                            f"[1, {'inf' if limit is None else limit}]",
                        )
                    )
            history.record(record.outcome is JobOutcome.EFFECTIVE)
    return issues


def _fault_view(
    result: SimulationResult,
) -> Tuple[Optional[int], Optional[int]]:
    """(fault tick, surviving processor), or (None, None) without a fault."""
    if result.permanent_fault is None:
        return None, None
    dead, tick = result.permanent_fault
    return tick, SPARE if dead == PRIMARY else PRIMARY


def _expected_enqueue(
    record, role: str, tc: TaskConformance,
    fault_tick: Optional[int], survivor: Optional[int],
) -> int:
    """The earliest tick a copy of this role may become ready."""
    enqueue = record.release
    if role == _BACKUP:
        enqueue += tc.backup_offset or 0
    elif (
        role == _MAIN
        and fault_tick is not None
        and record.release >= fault_tick
        and survivor is not None
    ):
        enqueue += tc.postfault_main_offset[survivor]
    return enqueue


def _audit_offsets(
    result: SimulationResult, spec: ConformanceSpec
) -> List[ValidationIssue]:
    """Postponed-release conformance (Definitions 2-5 / Equation 2).

    No backup segment may start before r̃ = r + θ_i, no post-fault
    mandatory segment before its survivor offset, and schemes without
    backups must not have backup segments at all.
    """
    issues: List[ValidationIssue] = []
    trace = result.trace
    fault_tick, survivor = _fault_view(result)
    starts: Dict[Tuple[int, int, str], int] = {}
    for segment in trace.segments:
        key = (segment.task_index, segment.job_index, segment.role)
        if key not in starts or segment.start < starts[key]:
            starts[key] = segment.start
    for (task_index, job_index, role), start in sorted(starts.items()):
        record = trace.records.get((task_index, job_index))
        if record is None:
            continue  # flagged as "gap" by validate_result
        tc = spec.tasks[task_index]
        label = f"J{task_index + 1},{job_index}"
        if role == _BACKUP and tc.backup_offset is None:
            issues.append(
                ValidationIssue(
                    "unexpected-backup",
                    f"{label} has backup segments but {spec.scheme} "
                    f"schedules no backups",
                )
            )
            continue
        earliest = _expected_enqueue(record, role, tc, fault_tick, survivor)
        if start < earliest:
            issues.append(
                ValidationIssue(
                    "postponement",
                    f"{label}/{role} started at {start}, before its "
                    f"postponed release {earliest} "
                    f"(r = {record.release} + offset {earliest - record.release})",
                )
            )
    return issues


def _audit_priority(
    result: SimulationResult, spec: ConformanceSpec
) -> List[ValidationIssue]:
    """Fixed-priority queue conformance (Algorithm 1, lines 2-9).

    Reconstructs, per processor, when each copy *ran* (its segments) and
    when it was demonstrably *ready but not running*: from its expected
    enqueue tick to its first segment, and between consecutive segments
    of the same copy.  A violation is a running segment overlapping a
    waiting interval of (a) a mandatory-queue copy while an optional
    runs, or (b) a strictly higher-priority copy of the same queue
    class.

    Conservative by construction: copies that never ran contribute no
    waiting intervals, pre-first-segment intervals are dropped when
    transient faults occurred (recovery copies enqueue at fault-detection
    times the trace does not record), and optional-vs-optional checks
    are skipped for non-preemptive-optional schemes (a dispatched
    optional legitimately holds its processor there).
    """
    issues: List[ValidationIssue] = []
    trace = result.trace
    records = trace.records
    have_transients = result.transient_fault_count > 0
    fault_tick, survivor = _fault_view(result)

    groups: Dict[Tuple[int, int, int, str], List] = defaultdict(list)
    for segment in trace.segments:
        groups[
            (segment.processor, segment.task_index,
             segment.job_index, segment.role)
        ].append(segment)

    # processor -> [(start, end, is_optional, queue_key, label)]
    running: Dict[int, List[Tuple[int, int, bool, tuple, str]]] = (
        defaultdict(list)
    )
    waiting: Dict[int, List[Tuple[int, int, bool, tuple, str]]] = (
        defaultdict(list)
    )
    for (processor, task_index, job_index, role), segs in groups.items():
        record = records.get((task_index, job_index))
        if record is None:
            continue  # flagged as "gap" by validate_result
        tc = spec.tasks[task_index]
        is_optional = role == _OPTIONAL
        if is_optional:
            fd = record.flexibility_degree
            key: tuple = (0 if fd is None else fd, task_index, job_index)
        else:
            key = (task_index, job_index)
        label = f"J{task_index + 1},{job_index}/{role}"
        segs.sort(key=lambda s: s.start)
        for seg in segs:
            running[processor].append(
                (seg.start, seg.end, is_optional, key, label)
            )
        enqueue = _expected_enqueue(record, role, tc, fault_tick, survivor)
        if not have_transients and segs[0].start > enqueue:
            waiting[processor].append(
                (enqueue, segs[0].start, is_optional, key, label)
            )
        for prev, nxt in zip(segs, segs[1:]):
            if nxt.start > prev.end:
                waiting[processor].append(
                    (prev.end, nxt.start, is_optional, key, label)
                )

    for processor, waits in waiting.items():
        runs = running[processor]
        for wstart, wend, w_opt, w_key, w_label in waits:
            for rstart, rend, r_opt, r_key, r_label in runs:
                if rend <= wstart or rstart >= wend:
                    continue
                if w_key == r_key and w_opt == r_opt:
                    continue  # the same copy identity (recovery re-runs)
                overlap = (max(wstart, rstart), min(wend, rend))
                if not w_opt and r_opt:
                    issues.append(
                        ValidationIssue(
                            "priority",
                            f"optional {r_label} ran on processor "
                            f"{processor} during {overlap} while mandatory "
                            f"{w_label} was ready",
                        )
                    )
                elif w_opt == r_opt:
                    if w_opt and not spec.optional_preemption:
                        continue
                    if w_key < r_key:
                        issues.append(
                            ValidationIssue(
                                "priority",
                                f"{r_label} (key {r_key}) ran on processor "
                                f"{processor} during {overlap} while "
                                f"higher-priority {w_label} (key {w_key}) "
                                f"was ready",
                            )
                        )
    return issues


def assert_valid(result: SimulationResult, max_copies: int = 2) -> None:
    """Raise AssertionError with every issue when validation fails."""
    issues = validate_result(result, max_copies=max_copies)
    assert not issues, "\n".join(f"{i.kind}: {i.detail}" for i in issues)


# -- DPD legality ---------------------------------------------------------


def _expected_decomposition(
    result: SimulationResult, model
) -> Dict[int, Tuple[Fraction, Fraction, Fraction, int]]:
    """Per-processor (busy, idle, sleep, transitions) the DPD rule demands.

    Recomputed from the run itself -- the trace's segments/gaps or the
    stats ledger -- applying :func:`~repro.energy.dpd.shutdown_decision`
    to every idle gap inside the processor's accounting window
    ([0, horizon), truncated at a dead processor's fault instant).
    """
    base = result.timebase
    expected: Dict[int, Tuple[Fraction, Fraction, Fraction, int]] = {}
    if result.trace is not None:
        for processor in range(result.trace.processor_count):
            window_end = result.horizon_ticks
            fault = result.permanent_fault
            if fault is not None and fault[0] == processor:
                window_end = min(window_end, fault[1])
            busy = base.from_ticks(
                result.trace.busy_ticks(processor, (0, window_end))
            )
            idle = Fraction(0)
            sleep = Fraction(0)
            transitions = 0
            for gap_start, gap_end in result.trace.idle_gaps(
                processor, (0, window_end)
            ):
                gap = base.from_ticks(gap_end - gap_start)
                if shutdown_decision(gap, model):
                    sleep += gap
                    transitions += 1
                else:
                    idle += gap
            expected[processor] = (busy, idle, sleep, transitions)
        return expected
    stats = result.stats
    if stats is None:  # pragma: no cover - engine fills one of the two
        raise ValueError("result has neither trace nor stats")
    for processor, counts in enumerate(stats.gap_counts):
        busy = base.from_ticks(result.busy_by_processor[processor])
        idle = Fraction(0)
        sleep = Fraction(0)
        transitions = 0
        for length, count in counts.items():
            gap = base.from_ticks(length)
            if shutdown_decision(gap, model):
                sleep += gap * count
                transitions += count
            else:
                idle += gap * count
        expected[processor] = (busy, idle, sleep, transitions)
    return expected


def _expected_speed_units(
    result: SimulationResult,
) -> Dict[int, Tuple[Tuple[object, Fraction], ...]]:
    """Per-processor sorted (speed, units) of DVFS-scaled execution.

    Re-derived from the run itself -- windowed segment overlaps on a
    trace run, the engine's :attr:`RunStats.speed_busy` ledger on a
    stats-only run -- independently of the accounting code under audit.
    """
    base = result.timebase
    expected: Dict[int, Tuple[Tuple[object, Fraction], ...]] = {}
    if result.trace is not None:
        for processor in range(result.trace.processor_count):
            window_end = result.horizon_ticks
            fault = result.permanent_fault
            if fault is not None and fault[0] == processor:
                window_end = min(window_end, fault[1])
            by_speed: Dict[object, int] = {}
            for segment in result.trace.segments:
                if segment.processor != processor or segment.speed == 1:
                    continue
                overlap = segment.overlap_with(0, window_end)
                if overlap > 0:
                    by_speed[segment.speed] = (
                        by_speed.get(segment.speed, 0) + overlap
                    )
            expected[processor] = tuple(
                (speed, base.from_ticks(by_speed[speed]))
                for speed in sorted(by_speed)
            )
        return expected
    stats = result.stats
    if stats is None:  # pragma: no cover - engine fills one of the two
        raise ValueError("result has neither trace nor stats")
    for processor, by_speed in enumerate(stats.speed_busy):
        expected[processor] = tuple(
            (speed, base.from_ticks(by_speed[speed]))
            for speed in sorted(by_speed)
        )
    return expected


def audit_energy(result: SimulationResult, report) -> List[ValidationIssue]:
    """DPD legality: the energy report must match the shutdown rule.

    Every gap the report counts as slept must satisfy
    :func:`~repro.energy.dpd.shutdown_decision` and vice versa, so the
    per-processor (busy, idle, sleep, transition) decomposition recomputed
    from the run must equal the report's exactly.

    On a DVFS run the audit goes further: the report must carry the
    plan's DVS model, its per-speed busy decomposition must equal the
    one re-derived from the run, and the active energy must equal the
    speed-aware charge over that re-derived decomposition bit-for-bit
    (the charging formula fixes its summation order so an independent
    recomputation reproduces the float exactly).
    """
    issues: List[ValidationIssue] = []
    expected = _expected_decomposition(result, report.model)
    plan = result.speed_plan
    dvs = getattr(report, "dvs", None)
    if (plan is None) != (dvs is None):
        issues.append(
            ValidationIssue(
                "dvfs-report",
                f"run {'has' if plan is not None else 'has no'} speed plan "
                f"but the report {'carries no' if dvs is None else 'carries a'}"
                f" DVS model",
            )
        )
    elif plan is not None and dvs != plan.model:
        issues.append(
            ValidationIssue(
                "dvfs-report",
                f"report charges under {dvs} but the run's plan uses "
                f"{plan.model}",
            )
        )
    speed_expected = (
        _expected_speed_units(result) if plan is not None else {}
    )
    for processor in sorted(
        set(expected) | set(report.per_processor)
    ):
        want = expected.get(processor)
        got = report.per_processor.get(processor)
        got_tuple = (
            None
            if got is None
            else (
                got.busy_units,
                got.idle_units,
                got.sleep_units,
                got.transition_count,
            )
        )
        if want != got_tuple:
            issues.append(
                ValidationIssue(
                    "dpd",
                    f"processor {processor}: reported "
                    f"(busy, idle, sleep, transitions) = {got_tuple} but "
                    f"the DPD rule over the run's gaps gives {want}",
                )
            )
        if want is None or got is None:
            continue
        want_speed = speed_expected.get(processor, ())
        if tuple(getattr(got, "speed_units", ())) != want_speed:
            issues.append(
                ValidationIssue(
                    "dvfs-energy",
                    f"processor {processor}: reported speed decomposition "
                    f"{got.speed_units} but the run gives {want_speed}",
                )
            )
            continue
        want_active = active_energy_of(
            want[0], want_speed, report.model, dvs
        )
        if got.active_energy != want_active:
            issues.append(
                ValidationIssue(
                    "dvfs-energy",
                    f"processor {processor}: reported active energy "
                    f"{got.active_energy!r}, the speed-aware charge over "
                    f"the run's decomposition is {want_active!r}",
                )
            )
    return issues


# -- cross-mode differential ----------------------------------------------


def result_ledger(result: SimulationResult) -> Dict[str, object]:
    """Canonical mode-independent summary of a run.

    Computable from a trace run (re-derived from segments and records)
    or a stats-only/folded run (the engine's ledger); two runs of the
    same descriptor must produce equal ledgers in every mode.
    """
    if result.trace is None:
        stats = result.stats
        if stats is None:  # pragma: no cover - engine fills one of the two
            raise ValueError("result has neither trace nor stats")
        return {
            "released": stats.released,
            "effective": stats.effective,
            "missed": stats.missed,
            "mandatory": stats.mandatory,
            "optional_executed": stats.optional_executed,
            "skipped": stats.skipped,
            "violations": tuple(stats.violations),
            "busy": tuple(result.busy_by_processor),
            "gaps": tuple(
                tuple(sorted(counts.items())) for counts in stats.gap_counts
            ),
            "speed_busy": tuple(
                tuple(sorted(counts.items())) for counts in stats.speed_busy
            ),
            "transient_faults": result.transient_fault_count,
        }
    trace = result.trace
    effective = missed = mandatory = optional_executed = skipped = 0
    for record in trace.records.values():
        if record.outcome is JobOutcome.EFFECTIVE:
            effective += 1
        elif record.outcome is JobOutcome.MISSED:
            missed += 1
        if record.classified_as == "mandatory":
            mandatory += 1
        elif record.classified_as == "optional":
            optional_executed += 1
        elif record.classified_as == "skipped":
            skipped += 1
    violations = [0] * len(result.taskset)
    for violation in verify_mk(result):
        violations[violation.task_index] += 1
    horizon = result.horizon_ticks
    fault = result.permanent_fault
    busy: List[int] = []
    gaps: List[Tuple[Tuple[int, int], ...]] = []
    speed_busy: List[Tuple[Tuple[object, int], ...]] = []
    for processor in range(trace.processor_count):
        window_end = horizon
        if fault is not None and fault[0] == processor:
            window_end = min(window_end, fault[1])
        busy.append(trace.busy_ticks(processor, (0, window_end)))
        counts: Dict[int, int] = {}
        for gap_start, gap_end in trace.idle_gaps(processor, (0, window_end)):
            length = gap_end - gap_start
            counts[length] = counts.get(length, 0) + 1
        gaps.append(tuple(sorted(counts.items())))
        by_speed: Dict[object, int] = {}
        for segment in trace.segments:
            if segment.processor != processor or segment.speed == 1:
                continue
            overlap = segment.overlap_with(0, window_end)
            if overlap > 0:
                by_speed[segment.speed] = (
                    by_speed.get(segment.speed, 0) + overlap
                )
        speed_busy.append(tuple(sorted(by_speed.items())))
    return {
        "released": len(trace.records),
        "effective": effective,
        "missed": missed,
        "mandatory": mandatory,
        "optional_executed": optional_executed,
        "skipped": skipped,
        "violations": tuple(violations),
        "busy": tuple(busy),
        "gaps": tuple(gaps),
        "speed_busy": tuple(speed_busy),
        "transient_faults": result.transient_fault_count,
    }


def compare_ledgers(
    reference: Dict[str, object],
    candidate: Dict[str, object],
    label: str = "candidate",
) -> List[ValidationIssue]:
    """Field-by-field comparison of two :func:`result_ledger` outputs."""
    issues: List[ValidationIssue] = []
    for key in sorted(set(reference) | set(candidate)):
        want = reference.get(key)
        got = candidate.get(key)
        if want != got:
            issues.append(
                ValidationIssue(
                    "mode-divergence",
                    f"{label}: ledger field {key!r} diverges from the "
                    f"trace reference ({got!r} != {want!r})",
                )
            )
    return issues
