"""Shared per-(task set, horizon) release timelines.

Every scheme simulated on one task set sees the same job releases: task i
releases job j at ``(j - 1) * P_i`` for every release instant strictly
before the horizon.  The engine used to rediscover this by chaining
release events through its heap -- once per scheme, per run.  A
:class:`ReleaseTimeline` precomputes the merged release sequence once and
is shared (via the offline-analysis cache) across every scheme and fault
scenario run on the same (task set, horizon) pair.

The order of same-tick releases is part of the engine's observable
behaviour (policies mutate per-task state and read (m,k) histories in
release order), so the timeline reproduces the heap protocol's order
exactly:

* at tick 0 every task releases, in task-index order (the engine seeded
  its heap that way);
* at any later shared tick, the release event of task i was pushed when
  its previous job released -- ``P_i`` ticks ago -- so events pushed
  earlier (larger periods) drained first; equal periods share every
  release tick and therefore keep their tick-0 relative order.

Hence the sort key: ``(tick, task_index)`` at tick 0 and
``(tick, -period, task_index)`` afterwards.
"""

from __future__ import annotations

import random
from typing import List, Optional, Tuple

from ..analysis.cache import shared_analysis
from ..errors import ConfigurationError
from ..model.taskset import TaskSet
from ..timebase import TimeBase
from ..workload.release import ReleaseModel


class ReleaseTimeline:
    """The merged release sequence of one task set over one horizon.

    Attributes:
        horizon_ticks: releases strictly before this tick are included.
        ticks / tasks / jobs: parallel tuples, one entry per release, in
            engine drain order; ``jobs`` holds 1-based job indices.
        period_ticks: per-task periods in ticks.
        periodic: True when every release sits at ``(j - 1) * P_i`` --
            the precondition for cycle folding's hyperperiod recurrence.

    Instances are immutable and safe to share across engines and threads;
    each engine keeps its own cursor into the tuples.
    """

    __slots__ = (
        "horizon_ticks",
        "ticks",
        "tasks",
        "jobs",
        "period_ticks",
        "periodic",
    )

    def __init__(
        self,
        taskset: TaskSet,
        horizon_ticks: int,
        timebase: TimeBase,
        release_model: Optional[ReleaseModel] = None,
    ) -> None:
        if horizon_ticks <= 0:
            raise ConfigurationError(
                f"horizon must be positive, got {horizon_ticks}"
            )
        periodic = release_model is None or release_model.is_periodic()
        periods = tuple(timebase.to_ticks(task.period) for task in taskset)
        entries: List[Tuple[int, int, int, int]] = []
        if periodic:
            for index, period in enumerate(periods):
                tick, job = 0, 1
                while tick < horizon_ticks:
                    rank = index if tick == 0 else -period
                    entries.append((tick, rank, index, job))
                    tick += period
                    job += 1
        else:
            for index, period in enumerate(periods):
                for tick, job in _arrivals(
                    release_model, index, period, horizon_ticks
                ):
                    rank = index if tick == 0 else -period
                    entries.append((tick, rank, index, job))
        entries.sort()
        self.horizon_ticks = horizon_ticks
        self.period_ticks = periods
        self.periodic = periodic
        self.ticks = tuple(entry[0] for entry in entries)
        self.tasks = tuple(entry[2] for entry in entries)
        self.jobs = tuple(entry[3] for entry in entries)

    def __len__(self) -> int:
        return len(self.ticks)

    def releases_per_span(self, span_ticks: int) -> int:
        """Releases inside any window of ``span_ticks`` ticks aligned to a
        common period multiple (the cycle-folding cursor advance)."""
        return sum(span_ticks // period for period in self.period_ticks)

    def __repr__(self) -> str:
        return (
            f"ReleaseTimeline(releases={len(self.ticks)}, "
            f"horizon_ticks={self.horizon_ticks})"
        )


def _arrivals(
    model: ReleaseModel, task_index: int, period: int, horizon_ticks: int
):
    """One task's seeded arrival stream: (tick, 1-based job index) pairs.

    Every inter-arrival time is at least ``period`` (sporadic-legal), so
    the job count never exceeds the periodic model's and 1-based job
    indices stay consecutive.
    """
    rng = random.Random(model.task_seed(task_index))
    if model.kind == "sporadic":
        jitter_max = int(model.jitter * period)
        tick, job = 0, 1
        while tick < horizon_ticks:
            yield tick, job
            tick += period + rng.randint(0, jitter_max)
            job += 1
    elif model.kind == "bursty":
        gap_max = max(1, int(model.burst_gap * period))
        tick, job, in_burst = 0, 1, 1
        while tick < horizon_ticks:
            yield tick, job
            tick += period
            if in_burst >= model.burst_size:
                tick += rng.randint(1, gap_max)
                in_burst = 1
            else:
                in_burst += 1
            job += 1
    else:  # pragma: no cover - periodic handled by the caller's fast path
        tick, job = 0, 1
        while tick < horizon_ticks:
            yield tick, job
            tick += period
            job += 1


def shared_release_timeline(
    taskset: TaskSet,
    horizon_ticks: int,
    timebase: TimeBase,
    release_model: Optional[ReleaseModel] = None,
) -> ReleaseTimeline:
    """The memoized timeline for (task set, horizon), shared per process.

    Non-periodic models extend the memo key with the model's full
    identity (kind, jitter/burst parameters, seed) -- a warm cache must
    never serve a periodic timeline to a sporadic run or one jitter
    seed's timeline to another.  Periodic requests keep the historical
    ``(horizon,)`` key so existing cache entries stay valid.
    """
    if release_model is not None and release_model.is_periodic():
        release_model = None
    params: Tuple = (
        (horizon_ticks,)
        if release_model is None
        else (horizon_ticks, release_model.cache_key())
    )
    return shared_analysis(
        "release_timeline",
        taskset,
        timebase,
        params,
        lambda: ReleaseTimeline(taskset, horizon_ticks, timebase, release_model),
    )
