"""Shared per-(task set, horizon) release timelines.

Every scheme simulated on one task set sees the same job releases: task i
releases job j at ``(j - 1) * P_i`` for every release instant strictly
before the horizon.  The engine used to rediscover this by chaining
release events through its heap -- once per scheme, per run.  A
:class:`ReleaseTimeline` precomputes the merged release sequence once and
is shared (via the offline-analysis cache) across every scheme and fault
scenario run on the same (task set, horizon) pair.

The order of same-tick releases is part of the engine's observable
behaviour (policies mutate per-task state and read (m,k) histories in
release order), so the timeline reproduces the heap protocol's order
exactly:

* at tick 0 every task releases, in task-index order (the engine seeded
  its heap that way);
* at any later shared tick, the release event of task i was pushed when
  its previous job released -- ``P_i`` ticks ago -- so events pushed
  earlier (larger periods) drained first; equal periods share every
  release tick and therefore keep their tick-0 relative order.

Hence the sort key: ``(tick, task_index)`` at tick 0 and
``(tick, -period, task_index)`` afterwards.
"""

from __future__ import annotations

from typing import List, Tuple

from ..analysis.cache import shared_analysis
from ..errors import ConfigurationError
from ..model.taskset import TaskSet
from ..timebase import TimeBase


class ReleaseTimeline:
    """The merged release sequence of one task set over one horizon.

    Attributes:
        horizon_ticks: releases strictly before this tick are included.
        ticks / tasks / jobs: parallel tuples, one entry per release, in
            engine drain order; ``jobs`` holds 1-based job indices.
        period_ticks: per-task periods in ticks.

    Instances are immutable and safe to share across engines and threads;
    each engine keeps its own cursor into the tuples.
    """

    __slots__ = ("horizon_ticks", "ticks", "tasks", "jobs", "period_ticks")

    def __init__(
        self, taskset: TaskSet, horizon_ticks: int, timebase: TimeBase
    ) -> None:
        if horizon_ticks <= 0:
            raise ConfigurationError(
                f"horizon must be positive, got {horizon_ticks}"
            )
        periods = tuple(timebase.to_ticks(task.period) for task in taskset)
        entries: List[Tuple[int, int, int, int]] = []
        for index, period in enumerate(periods):
            tick, job = 0, 1
            while tick < horizon_ticks:
                rank = index if tick == 0 else -period
                entries.append((tick, rank, index, job))
                tick += period
                job += 1
        entries.sort()
        self.horizon_ticks = horizon_ticks
        self.period_ticks = periods
        self.ticks = tuple(entry[0] for entry in entries)
        self.tasks = tuple(entry[2] for entry in entries)
        self.jobs = tuple(entry[3] for entry in entries)

    def __len__(self) -> int:
        return len(self.ticks)

    def releases_per_span(self, span_ticks: int) -> int:
        """Releases inside any window of ``span_ticks`` ticks aligned to a
        common period multiple (the cycle-folding cursor advance)."""
        return sum(span_ticks // period for period in self.period_ticks)

    def __repr__(self) -> str:
        return (
            f"ReleaseTimeline(releases={len(self.ticks)}, "
            f"horizon_ticks={self.horizon_ticks})"
        )


def shared_release_timeline(
    taskset: TaskSet, horizon_ticks: int, timebase: TimeBase
) -> ReleaseTimeline:
    """The memoized timeline for (task set, horizon), shared per process."""
    return shared_analysis(
        "release_timeline",
        taskset,
        timebase,
        (horizon_ticks,),
        lambda: ReleaseTimeline(taskset, horizon_ticks, timebase),
    )
