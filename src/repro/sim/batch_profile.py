"""Declarative per-scheme release rules for the batch kernel.

The scalar engine asks its policy one :meth:`plan_release` question per
released job.  The batch kernel (:mod:`repro.sim.batch`) cannot afford a
Python callback per (simulation, release) pair, so a policy that wants to
run batched publishes a :class:`BatchProfile` instead: a closed-form,
per-task description of every decision :meth:`plan_release` could make --
classification rule, copy placement, postponement offsets, and the
post-fault variants.  The kernel evaluates those rules over whole arrays
of simulations at once.

A profile is a *claim of equivalence*: for every reachable release state
(flexibility degree, job index, fault mode) the profile must reproduce the
policy's plan exactly, or the batch results would diverge from the scalar
engine's.  Policies whose decisions do not fit this vocabulary (e.g.
supplied patterns that are not window-periodic, or mutable state beyond
the optional-processor alternation) return None from
:meth:`~repro.sim.engine.SchedulingPolicy.batch_profile`, and the harness
falls back to the scalar engine for those simulations.

Vocabulary, mirroring the shipped schemes:

* classification ``"pattern"``: mandatory iff the window bit at phase
  ``(job_index - 1) mod k`` is set; non-mandatory jobs are skipped.
* classification ``"fd"``: mandatory iff the flexibility degree is 0;
  optional iff ``1 <= fd <= fd_max``; skipped otherwise.
* Fault-free mandatory jobs place a MAIN copy on ``main_processor`` at
  the release tick, plus -- when ``backup_offset`` is not None -- a
  BACKUP copy on the other processor postponed by that offset.
* Fault-free optional jobs run a single copy, either alternating per
  task starting from the primary (``alternate_optionals``) or pinned to
  ``optional_processor``.
* After a permanent fault, mandatory jobs run a single MAIN copy on the
  survivor postponed by ``postfault_main_offset[survivor]``; optional
  jobs continue on the survivor only if ``postfault_optionals``.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional, Tuple

#: Stand-in for "no upper bound" on the optional flexibility degree
#: (the greedy scheme executes every FD >= 1 job).  Any value above the
#: largest possible degree (k - m < k <= 2**16) behaves identically.
UNBOUNDED_FD = 1 << 20


@dataclass(frozen=True)
class BatchTaskProfile:
    """Closed-form release rules for one task under one policy."""

    classification: str  # "pattern" | "fd"
    pattern_window: Optional[Tuple[int, ...]] = None  # k bits, pattern tasks
    fd_max: int = 0
    main_processor: int = 0
    backup_offset: Optional[int] = None  # None = no backup copy
    optional_processor: int = 0
    alternate_optionals: bool = False
    postfault_main_offset: Tuple[int, int] = (0, 0)  # indexed by survivor
    postfault_optionals: bool = False

    def __post_init__(self) -> None:
        if self.classification not in ("pattern", "fd"):
            raise ValueError(
                f"classification must be 'pattern' or 'fd', "
                f"got {self.classification!r}"
            )
        if self.classification == "pattern" and self.pattern_window is None:
            raise ValueError("pattern classification needs a pattern_window")


@dataclass(frozen=True)
class BatchProfile:
    """One policy's complete batch-execution contract."""

    tasks: Tuple[BatchTaskProfile, ...] = field(default_factory=tuple)
    #: True when a dispatched optional holds its processor until it
    #: finishes or becomes infeasible (``optional_preemption=False``).
    sticky_optionals: bool = False
