"""Canonical engine-state capture for cycle folding.

A fixed-priority schedule of strictly periodic tasks is itself periodic
once the scheduler's state recurs: if the complete dynamic state at one
hyperperiod boundary equals the state at a later boundary, the schedule
in between repeats verbatim for every following cycle (the engine is
deterministic and, with faults off the table, receives no external
input).  Goossens's exact (m,k)/DBP analysis and the multiprocessor
feasibility literature rest on the same state-recurrence argument.

This module defines what "the complete dynamic state" means for
:class:`~repro.sim.engine.StandbySparingEngine` and renders it as a
hashable value that is *time-translation invariant*: every absolute tick
is stored relative to the boundary and every job index relative to the
number of jobs the owning task has released by the boundary.  Two
boundaries with equal canonical states therefore evolve identically up
to a uniform time shift, which is exactly the property cycle folding
(:mod:`repro.sim.folding`) needs.

Captured components:

* processor liveness and the dead-processor index;
* per-task (m,k)-history windows (they drive flexibility degrees) and
  the stats tracker windows (they drive violation counting);
* both ready queues per processor, in priority order, with canonical
  priority keys;
* the running and sticky job of each processor, plus whether they are
  the same copy (the dispatcher's hold-the-processor test is an identity
  test);
* every logical job that can still influence the future: those with a
  pending deadline event or a live copy, including each copy's full
  scheduling state and sibling linkage;
* the pending event multiset (deadlines and not-yet-fired enqueues),
  with relative times;
* an opaque policy signature (see ``SchedulingPolicy.fold_state``)
  covering mutable policy state and static-pattern phase.

Cumulative counters (energy, busy ticks, met/missed counts) are
deliberately *excluded*: they are the ledger being folded, not part of
the recurring state.

Per-processor idle-gap cursor offsets (how long the currently open idle
gap has been running) are also excluded, deliberately: gap history never
influences a scheduling decision, so the schedule repeats regardless --
but the *ledger* fold of gap lengths is only exact when the offsets
agree for every processor that closes a gap during the cycle (the
boundary-crossing first gap's length includes the offset).  The engine
checks that side condition against the ledger's busy deltas at match
time instead of baking the offsets into the key; keying on them would
make a processor that idles forever (offset growing every cycle)
unmatchable and defeat folding entirely.

``capture_state`` returns ``None`` when the state cannot be proven
recurrence-safe -- most importantly while a permanent-fault event is
still pending, since an exogenous fault breaks periodicity.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple

from ..model.job import Job

# Event kinds double as the ordering at equal ticks: permanent faults
# strike first, then deadlines are judged, then new jobs arrive, then
# postponed copies enqueue.  Defined here (not in engine.py) so the
# folding machinery can interpret heap entries without importing the
# engine.
EV_PERMFAULT = 0
EV_DEADLINE = 1
EV_RELEASE = 2
EV_ENQUEUE = 3

#: Canonical stand-in for "no job" in slot captures (kept orderable
#: against job tuples only through position, never compared).
_NO_JOB = ()


def canonical_key(key: tuple, rel_base: Sequence[int]) -> tuple:
    """A queue priority key with its job index made boundary-relative.

    Mandatory keys are ``(task, job)``; optional keys are
    ``(fd, task, job)``.  Only the trailing job index is absolute.
    """
    if len(key) == 2:
        task, job = key
        return (task, job - rel_base[task])
    fd, task, job = key
    return (fd, task, job - rel_base[task])


def canonical_job(job: Job, now: int, rel_base: Sequence[int]) -> tuple:
    """One copy's behavioural state, relative to the boundary ``now``.

    ``started_at``, ``completion_time``, ``faulted`` and ``name`` are
    excluded: the first two are reporting-only in stats mode, transient
    faults disable folding entirely, and names are cosmetic.
    """
    task = job.task_index
    return (
        task,
        job.job_index - rel_base[task],
        job.role.value,
        job.release - now,
        job.deadline - now,
        job.enqueue_time - now,
        job.wcet,
        job.remaining,
        job.status.value,
        job.processor,
        canonical_key(job.queue_key, rel_base),
    )


def _canonical_entry(entry, now: int, rel_base: Sequence[int]) -> tuple:
    """A logical job's state: decision flag + copies with sibling links."""
    copies = entry.copies
    index_of = {id(copy): position for position, copy in enumerate(copies)}
    rendered = tuple(
        canonical_job(copy, now, rel_base)
        + (
            index_of.get(id(copy.sibling), -1)
            if copy.sibling is not None
            else -1,
        )
        for copy in copies
    )
    return (entry.decided, rendered)


def _canonical_queue(queue, now: int, rel_base: Sequence[int]) -> tuple:
    """Live queue contents in dispatch order with canonical keys.

    The dispatch order is (key, insertion seq); canonicalizing the key
    preserves relative order because the per-task job-index shift is
    monotone and the leading key components (task / flexibility degree)
    dominate the comparison across tasks.
    """
    return tuple(
        (canonical_key(key, rel_base), canonical_job(job, now, rel_base))
        for key, _seq, job in queue.ordered_live()
    )


def _canonical_slot(job: Optional[Job], now: int, rel_base: Sequence[int]):
    if job is None or job.is_finished:
        return _NO_JOB
    return canonical_job(job, now, rel_base)


def capture_state(
    now: int,
    period_ticks: Sequence[int],
    alive: Sequence[bool],
    dead_processor: Optional[int],
    histories,
    tracker_windows: Sequence[tuple],
    heap: List[tuple],
    mjq,
    ojq,
    current: Sequence[Optional[Job]],
    sticky: Sequence[Optional[Job]],
    logical: Dict[Tuple[int, int], object],
    policy_signature,
) -> Optional[tuple]:
    """The canonical state at hyperperiod boundary ``now``, or None.

    Returns None when the state is not recurrence-safe: a permanent
    fault is still pending, or an unknown event kind is in flight.
    ``policy_signature`` must already be known non-None (the engine
    checks ``fold_state`` before calling).
    """
    rel_base = [now // period for period in period_ticks]

    events = []
    live_keys = set()
    for time, kind, _seq, a, b in heap:
        if kind == EV_DEADLINE:
            events.append((time - now, kind, a, b - rel_base[a]))
            live_keys.add((a, b))
        elif kind == EV_ENQUEUE:
            # Enqueue events whose copy already finished (e.g. LOST at a
            # permanent fault) are pure no-ops when they fire; leaving
            # them out lets the steady state match sooner.
            if not a.is_finished:
                events.append(
                    (time - now, kind, canonical_job(a, now, rel_base), 0)
                )
                live_keys.add(a.key())
        else:
            # A pending permanent fault (or anything unrecognized) makes
            # the future non-periodic: refuse to snapshot.
            return None
    events.sort()

    queues = []
    for processor in (0, 1):
        for family in (mjq, ojq):
            queue = family[processor]
            queues.append(_canonical_queue(queue, now, rel_base))
            for job in queue.live_jobs():
                live_keys.add(job.key())

    slots = []
    for processor in (0, 1):
        running = current[processor]
        held = sticky[processor]
        for job in (running, held):
            if job is not None and not job.is_finished:
                live_keys.add(job.key())
        slots.append(
            (
                _canonical_slot(running, now, rel_base),
                _canonical_slot(held, now, rel_base),
                running is not None and running is held,
            )
        )

    entries = tuple(
        (
            task,
            job - rel_base[task],
            _canonical_entry(logical[(task, job)], now, rel_base),
        )
        for task, job in sorted(live_keys)
    )

    return (
        tuple(alive),
        dead_processor,
        tuple(history.outcomes() for history in histories),
        tuple(tracker_windows),
        tuple(queues),
        tuple(slots),
        entries,
        tuple(events),
        policy_signature,
    )
