"""Fault models: transient (Poisson) and permanent (standby takeover)."""

from .types import FaultKind, PermanentFault, TransientFaultModel
from .transient import PoissonTransientFaults, NoTransientFaults
from .permanent import random_permanent_fault
from .scenario import FaultScenario

__all__ = [
    "FaultKind",
    "PermanentFault",
    "TransientFaultModel",
    "PoissonTransientFaults",
    "NoTransientFaults",
    "random_permanent_fault",
    "FaultScenario",
]
