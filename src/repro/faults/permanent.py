"""Permanent fault generation.

The second and third experiments of the paper assume the system is subject
to a permanent fault that "could occur at most once".  For the sweep we
draw the fault instant uniformly over the simulation horizon and the dying
processor uniformly between primary and spare, from a dedicated seeded RNG
stream.
"""

from __future__ import annotations

import random
from typing import Optional

from ..errors import ConfigurationError
from .types import PermanentFault


def random_permanent_fault(
    horizon_ticks: int,
    seed: "Optional[int | random.Random]" = None,
    processor: Optional[int] = None,
) -> PermanentFault:
    """Draw one permanent fault uniformly over [0, horizon).

    Args:
        horizon_ticks: simulation horizon (ticks).
        seed: RNG seed or instance for reproducibility.
        processor: force the dying processor (0/1); random when None.
    """
    if horizon_ticks <= 0:
        raise ConfigurationError(f"horizon must be positive, got {horizon_ticks}")
    rng = seed if isinstance(seed, random.Random) else random.Random(seed)
    dying = rng.randrange(2) if processor is None else processor
    instant = rng.randrange(horizon_ticks)
    return PermanentFault(processor=dying, time_ticks=instant)
