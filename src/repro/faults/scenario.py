"""Composable fault scenarios matching the paper's three experiments.

* ``FaultScenario.none()`` -- Figure 6(a): no faults at all.
* ``FaultScenario.permanent_only(...)`` -- Figure 6(b): at most one
  permanent fault, no transients.
* ``FaultScenario.permanent_and_transient(...)`` -- Figure 6(c): one
  permanent fault plus Poisson transients at λ = 1e-6 per ms.

A scenario is a small factory: given the simulation horizon and tick grid
it yields the ``(transient_fault_fn, permanent_fault)`` pair the engine
consumes, drawing randomness from per-purpose seeded streams.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Optional, Tuple

from ..timebase import TimeBase
from .permanent import random_permanent_fault
from .transient import (
    PAPER_FAULT_RATE,
    NoTransientFaults,
    PoissonTransientFaults,
)
from .types import PermanentFault, TransientFaultModel


@dataclass
class FaultScenario:
    """A reproducible fault configuration for one simulation run.

    Attributes:
        transient_rate: Poisson rate per time unit (0 = no transients).
        with_permanent: whether one permanent fault is injected.
        seed: base seed; transient and permanent streams are derived.
        permanent_processor: force which processor dies, or None = random.
        permanent_tick: force the fault instant, or None = uniform random.
    """

    transient_rate: float = 0.0
    with_permanent: bool = False
    seed: Optional[int] = None
    permanent_processor: Optional[int] = None
    permanent_tick: Optional[int] = None

    @classmethod
    def none(cls) -> "FaultScenario":
        """Experiment 1: fault-free."""
        return cls()

    @classmethod
    def permanent_only(
        cls,
        seed: Optional[int] = None,
        processor: Optional[int] = None,
        tick: Optional[int] = None,
    ) -> "FaultScenario":
        """Experiment 2: a single permanent fault."""
        return cls(
            with_permanent=True,
            seed=seed,
            permanent_processor=processor,
            permanent_tick=tick,
        )

    @classmethod
    def permanent_and_transient(
        cls,
        seed: Optional[int] = None,
        rate: float = PAPER_FAULT_RATE,
    ) -> "FaultScenario":
        """Experiment 3: permanent fault plus Poisson transients."""
        return cls(transient_rate=rate, with_permanent=True, seed=seed)

    def materialize(
        self, horizon_ticks: int, timebase: TimeBase
    ) -> Tuple[TransientFaultModel, Optional[Tuple[int, int]]]:
        """Instantiate the fault oracles for one run."""
        if self.transient_rate > 0:
            transient: TransientFaultModel = PoissonTransientFaults(
                self.transient_rate,
                timebase,
                seed=None if self.seed is None else self.seed * 2654435761 % 2**31,
            )
        else:
            transient = NoTransientFaults()
        permanent: Optional[Tuple[int, int]] = None
        if self.with_permanent:
            if self.permanent_tick is not None and self.permanent_processor is not None:
                permanent = PermanentFault(
                    self.permanent_processor, self.permanent_tick
                ).as_tuple()
            else:
                rng = random.Random(
                    None if self.seed is None else self.seed ^ 0x5EED
                )
                fault = random_permanent_fault(
                    horizon_ticks, seed=rng, processor=self.permanent_processor
                )
                if self.permanent_tick is not None:
                    fault = PermanentFault(fault.processor, self.permanent_tick)
                permanent = fault.as_tuple()
        return transient, permanent
