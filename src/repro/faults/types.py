"""Fault taxonomy shared by the injectors and the harness."""

from __future__ import annotations

import enum
from dataclasses import dataclass

from ..errors import ConfigurationError
from ..model.job import Job


class FaultKind(enum.Enum):
    """The paper's two fault classes (Section II-B)."""

    TRANSIENT = "transient"  #: soft error, detected by a sanity check
    PERMANENT = "permanent"  #: processor death, handled by the spare


@dataclass(frozen=True)
class PermanentFault:
    """A permanent processor fault at a given instant.

    Attributes:
        processor: which processor dies (0 = primary, 1 = spare).
        time_ticks: tick at which it dies.
    """

    processor: int
    time_ticks: int

    def __post_init__(self) -> None:
        if self.processor not in (0, 1):
            raise ConfigurationError(
                f"processor must be 0 or 1, got {self.processor}"
            )
        if self.time_ticks < 0:
            raise ConfigurationError(
                f"fault time must be non-negative, got {self.time_ticks}"
            )

    def as_tuple(self) -> "tuple[int, int]":
        return (self.processor, self.time_ticks)


class TransientFaultModel:
    """Interface of transient fault oracles consulted at job completion.

    Implementations decide, once per completing job copy, whether the
    sanity check at the end of its execution flags a transient fault.

    ``never_faults`` marks an oracle that is *statically known* to always
    answer False; the simulator's cycle-folding fast path requires this
    guarantee (a fold skips the completion checks of every folded cycle,
    which is only sound when those checks provably change nothing).
    """

    never_faults = False

    def job_faulted(self, job: Job, completion_tick: int) -> bool:
        """True when the completing copy's result is corrupted."""
        raise NotImplementedError

    def __call__(self, job: Job, completion_tick: int) -> bool:
        return self.job_faulted(job, completion_tick)
