"""Transient fault injection with Poisson arrivals.

The paper (Section V, third experiment) assumes transient faults follow a
Poisson distribution with average rate λ = 1e-6 (per ms, the model time
unit).  A job copy that executed for ``x`` time units is then hit by at
least one fault with probability ``1 - exp(-λ x)``; the fault is detected
by the sanity check at the end of execution, matching Section II-B.

Faults are decided by a dedicated, seeded :class:`random.Random` stream so
runs are reproducible and fault draws do not perturb any other random
choice in the harness.
"""

from __future__ import annotations

import math
import random
from typing import Optional

from ..errors import ConfigurationError
from ..model.job import Job
from ..timebase import TimeBase
from .types import TransientFaultModel

#: The paper's average transient fault rate, per model time unit (ms).
PAPER_FAULT_RATE = 1e-6


class NoTransientFaults(TransientFaultModel):
    """The no-fault oracle (experiments 1 and 2)."""

    never_faults = True

    def job_faulted(self, job: Job, completion_tick: int) -> bool:
        return False


class PoissonTransientFaults(TransientFaultModel):
    """Poisson transient faults at a configurable rate.

    Args:
        rate_per_unit: average fault rate λ per model time unit.
        timebase: tick grid, to convert executed ticks to time units.
        seed: RNG seed (or an already-built ``random.Random``).
    """

    def __init__(
        self,
        rate_per_unit: float,
        timebase: TimeBase,
        seed: "Optional[int | random.Random]" = None,
    ) -> None:
        if rate_per_unit < 0:
            raise ConfigurationError(f"fault rate must be >= 0, got {rate_per_unit}")
        self.rate = rate_per_unit
        self.timebase = timebase
        if isinstance(seed, random.Random):
            self._rng = seed
        else:
            self._rng = random.Random(seed)
        self.draws = 0
        self.faults = 0

    def fault_probability(self, executed_ticks: int) -> float:
        """P(at least one fault during ``executed_ticks`` of execution)."""
        if executed_ticks <= 0 or self.rate == 0:
            return 0.0
        executed_units = executed_ticks / self.timebase.ticks_per_unit
        return 1.0 - math.exp(-self.rate * executed_units)

    def job_faulted(self, job: Job, completion_tick: int) -> bool:
        self.draws += 1
        probability = self.fault_probability(job.wcet)
        hit = self._rng.random() < probability
        if hit:
            self.faults += 1
        return hit
