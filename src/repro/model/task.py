"""Periodic tasks with (m,k)-firm constraints.

A task follows the paper's five-tuple ``(P, D, C, m, k)``: period, relative
(constrained) deadline ``D <= P``, worst-case execution time, and the
(m,k)-constraint.  Priorities are fixed and externally assigned through the
task *index* inside a :class:`~repro.model.taskset.TaskSet` (lower index =
higher priority), mirroring the paper's convention that τj has lower
priority than τi when j > i.
"""

from __future__ import annotations

from dataclasses import dataclass
from fractions import Fraction

from ..errors import ModelError
from ..timebase import TimeLike, as_fraction
from .mk import MKConstraint


@dataclass(frozen=True)
class Task:
    """One periodic task τ = (P, D, C, m, k).

    Attributes:
        period: inter-release separation P (model time units, e.g. ms).
        deadline: relative deadline D, with 0 < C <= D <= P.
        wcet: worst-case execution time C.
        mk: the (m,k)-firm constraint.
        name: optional human-readable label used in traces and Gantt charts.
    """

    period: Fraction
    deadline: Fraction
    wcet: Fraction
    mk: MKConstraint
    name: str = ""

    def __init__(
        self,
        period: TimeLike,
        deadline: TimeLike,
        wcet: TimeLike,
        m: "int | MKConstraint",
        k: "int | None" = None,
        name: str = "",
    ) -> None:
        """Build a task from paper-style parameters.

        Accepts either ``Task(P, D, C, MKConstraint(m, k))`` or the
        positional paper tuple ``Task(P, D, C, m, k)``.
        """
        if isinstance(m, MKConstraint):
            if k is not None:
                raise ModelError("pass either an MKConstraint or (m, k), not both")
            constraint = m
        else:
            if k is None:
                raise ModelError("k is required when m is an int")
            constraint = MKConstraint(m, k)
        period_f = as_fraction(period)
        deadline_f = as_fraction(deadline)
        wcet_f = as_fraction(wcet)
        if period_f <= 0:
            raise ModelError(f"period must be positive, got {period_f}")
        if not 0 < wcet_f <= deadline_f:
            raise ModelError(
                f"wcet must satisfy 0 < C <= D, got C={wcet_f}, D={deadline_f}"
            )
        if deadline_f > period_f:
            raise ModelError(
                f"constrained deadlines required: D={deadline_f} > P={period_f}"
            )
        object.__setattr__(self, "period", period_f)
        object.__setattr__(self, "deadline", deadline_f)
        object.__setattr__(self, "wcet", wcet_f)
        object.__setattr__(self, "mk", constraint)
        object.__setattr__(self, "name", name)

    @property
    def m(self) -> int:
        """Shorthand for the constraint's m."""
        return self.mk.m

    @property
    def k(self) -> int:
        """Shorthand for the constraint's k."""
        return self.mk.k

    @property
    def utilization(self) -> Fraction:
        """Classic utilization C / P."""
        return self.wcet / self.period

    @property
    def mk_utilization(self) -> Fraction:
        """(m,k)-utilization m*C / (k*P), the paper's workload metric."""
        return Fraction(self.mk.m, self.mk.k) * self.wcet / self.period

    def release_time(self, job_index: int) -> Fraction:
        """Release time of the ``job_index``-th job (1-based, synchronous)."""
        if job_index < 1:
            raise ModelError(f"job indices are 1-based, got {job_index}")
        return (job_index - 1) * self.period

    def absolute_deadline(self, job_index: int) -> Fraction:
        """Absolute deadline of the ``job_index``-th job (1-based)."""
        return self.release_time(job_index) + self.deadline

    def paper_tuple(self) -> tuple:
        """The (P, D, C, m, k) tuple as printed in the paper."""
        return (self.period, self.deadline, self.wcet, self.mk.m, self.mk.k)

    def __str__(self) -> str:
        label = self.name or "task"
        return (
            f"{label}(P={self.period}, D={self.deadline}, C={self.wcet}, "
            f"m={self.mk.m}, k={self.mk.k})"
        )
