"""Static mandatory/optional partitioning patterns for (m,k)-constraints.

A *pattern* assigns each job index j (1-based) of a task a bit: ``1`` for
mandatory, ``0`` for optional.  The paper's baselines use the *deeply red*
R-pattern of Koren & Shasha (Equation 1):

    pi_ij = 1  if 1 <= (j mod k_i) <= m_i   else 0

i.e. the first m jobs of every window of k are mandatory.  The
evenly-distributed E-pattern of Ramanathan is provided as an extension for
ablations; it spreads the m mandatory slots uniformly across the window:

    pi_ij = 1  iff  j == floor(ceil((j*m)/k) * k / m)   (1-based, per window)

Both patterns are periodic with period k and guarantee every window of k
consecutive jobs contains at least m mandatory slots.
"""

from __future__ import annotations

from typing import Iterator, List, Protocol, runtime_checkable

from ..errors import ModelError
from .mk import MKConstraint


@runtime_checkable
class Pattern(Protocol):
    """Protocol for static job partitioning patterns."""

    mk: MKConstraint

    def is_mandatory(self, job_index: int) -> bool:
        """Whether the 1-based job ``job_index`` is mandatory."""
        ...


class _PeriodicPattern:
    """Shared machinery for patterns periodic in the window length k."""

    __slots__ = ("mk",)

    def __init__(self, mk: MKConstraint) -> None:
        self.mk = mk

    def is_mandatory(self, job_index: int) -> bool:
        raise NotImplementedError

    def bits(self, count: int) -> List[int]:
        """The first ``count`` pattern bits, as a list of 0/1 ints."""
        if count < 0:
            raise ModelError(f"count must be non-negative, got {count}")
        return [int(self.is_mandatory(j)) for j in range(1, count + 1)]

    def window(self) -> List[int]:
        """One full period of the pattern (k bits)."""
        return self.bits(self.mk.k)

    def iter_mandatory_indices(self) -> Iterator[int]:
        """Yield 1-based mandatory job indices, unbounded."""
        j = 1
        while True:
            if self.is_mandatory(j):
                yield j
            j += 1

    def mandatory_count_in(self, job_lo: int, job_hi: int) -> int:
        """Number of mandatory jobs with index in [job_lo, job_hi] (1-based).

        Computed in O(k) via the pattern's periodicity, so demand-bound
        analysis over long horizons stays cheap.
        """
        if job_hi < job_lo:
            return 0
        return self._prefix_count(job_hi) - self._prefix_count(job_lo - 1)

    def _prefix_count(self, job_hi: int) -> int:
        """Mandatory jobs among indices 1..job_hi."""
        if job_hi <= 0:
            return 0
        k = self.mk.k
        per_window = sum(self.window())
        full, rest = divmod(job_hi, k)
        partial = sum(int(self.is_mandatory(j)) for j in range(1, rest + 1))
        return full * per_window + partial

    def __repr__(self) -> str:
        return f"{type(self).__name__}(mk={self.mk})"


class RPattern(_PeriodicPattern):
    """Deeply-red pattern: the first m of every k jobs are mandatory.

    Equation (1) of the paper assumes m < k; for hard tasks (m == k) the
    literal formula would mark job k optional (j mod k == 0), so that case
    is special-cased to "everything mandatory".
    """

    def is_mandatory(self, job_index: int) -> bool:
        if job_index < 1:
            raise ModelError(f"job indices are 1-based, got {job_index}")
        if self.mk.is_hard:
            return True
        return 1 <= (job_index % self.mk.k) <= self.mk.m


class EPattern(_PeriodicPattern):
    """Evenly-distributed pattern (Ramanathan 1999).

    Job j is mandatory iff ``j - 1 == ceil(floor((j-1)*m/k) * k / m)`` when
    indices are taken 0-based within each window; this places the m
    mandatory slots as uniformly as possible.  The first job of every
    window is always mandatory, and every window of k consecutive jobs
    contains at least m mandatory jobs.
    """

    def is_mandatory(self, job_index: int) -> bool:
        if job_index < 1:
            raise ModelError(f"job indices are 1-based, got {job_index}")
        m, k = self.mk.m, self.mk.k
        j0 = (job_index - 1) % k
        # j0 == ceil(floor(j0*m/k) * k / m), in exact integer arithmetic.
        return j0 == -(-((j0 * m) // k) * k // m)


class RotatedPattern(_PeriodicPattern):
    """A base pattern's window rotated left by ``rotation`` slots.

    Rotating a pattern preserves the (m,k)-guarantee of the *infinite*
    job sequence (every window of k consecutive jobs still sees the same
    circular window contents) while changing which job indices are
    mandatory -- the lever Quan & Hu's enhanced fixed-priority analysis
    [13] turns to spread mandatory jobs of different tasks apart and make
    otherwise-unschedulable sets schedulable.

    Note the boundary: with rotation r > 0 the first r mandatory slots of
    the deeply-red window move to the *end* of the first period, so the
    very first jobs of the task may be optional.  That is sound for the
    steady-state constraint (and is exactly what [13] exploits), but it
    weakens the "all history met" initialization assumption; the paper's
    own schemes stick to r = 0.
    """

    __slots__ = ("base", "rotation")

    def __init__(self, base: "_PeriodicPattern", rotation: int) -> None:
        super().__init__(base.mk)
        if rotation < 0:
            raise ModelError(f"rotation must be >= 0, got {rotation}")
        self.base = base
        self.rotation = rotation % base.mk.k

    def is_mandatory(self, job_index: int) -> bool:
        if job_index < 1:
            raise ModelError(f"job indices are 1-based, got {job_index}")
        shifted = (job_index - 1 + self.rotation) % self.mk.k + 1
        return self.base.is_mandatory(shifted)

    def __repr__(self) -> str:
        return (
            f"RotatedPattern({type(self.base).__name__}, mk={self.mk}, "
            f"rotation={self.rotation})"
        )


def is_window_periodic(pattern: Pattern) -> bool:
    """Whether ``pattern.is_mandatory`` depends only on job index mod k.

    Every pattern shipped here (R, E, rotated) is periodic in the window
    length; a user-supplied pattern of unknown provenance is not assumed
    to be.  The cycle-folding fast path needs this distinction: a
    window-periodic pattern's entire future is determined by the current
    job-index phase, so two hyperperiod boundaries with equal phases see
    identical classifications forever after.
    """
    return isinstance(pattern, _PeriodicPattern)


def pattern_satisfies_mk(bits: "List[int]", mk: MKConstraint) -> bool:
    """Check that a bit sequence meets >= m ones in every k-window.

    Utility shared by tests and the QoS monitor; ``bits`` shorter than one
    window trivially satisfies the constraint.
    """
    if len(bits) < mk.k:
        return True
    window = sum(bits[: mk.k])
    if window < mk.m:
        return False
    for j in range(mk.k, len(bits)):
        window += bits[j] - bits[j - mk.k]
        if window < mk.m:
            return False
    return True
