"""(m,k) outcome histories and the flexibility degree (Definition 1).

The *flexibility degree* FD(J_i) of an upcoming job J_i is the number of
consecutive deadline misses task τ_i can still tolerate starting from J_i
without violating its (m,k)-constraint, given the outcomes of the most
recent k_i - 1 jobs.

Derivation used here (matching the paper's worked traces): let
``h = (h_1, ..., h_{k-1})`` be the last k-1 outcomes, oldest first, with
1 = effective.  Suppose the next d jobs all miss.  For t = 1..d the window
of k consecutive jobs ending at the t-th future job consists of the last
``k - t`` history entries plus t misses, so it holds iff the last ``k - t``
history entries contain at least m ones.  Hence::

    FD = max { d >= 0 : for all 1 <= t <= d,
               ones(last k - t entries of h) >= m }

The paper's examples fix the boundary condition: *before time zero every
job is assumed to have met its deadline* (an empty system has its full
slack), so the history is initialized to all ones.  With an all-zero
initialization FD would reduce to the R-pattern's classification instead;
:class:`MKHistory` supports both via ``initial_met``.

FD = 0 means the job is *mandatory* (one more miss violates the
constraint); the selective scheme picks exactly the FD = 1 optional jobs.
"""

from __future__ import annotations

from collections import deque
from typing import Deque, Iterable, Sequence

from ..errors import ModelError
from .mk import MKConstraint

#: Supported boundary conditions for the (m,k) history "before time zero":
#: ``"met"`` is the paper's assumption (every pre-horizon job met its
#: deadline), ``"miss"`` the deeply-pessimistic all-miss start, and
#: ``"rpattern"`` seeds the window as if the task had been following its
#: R-pattern, so the first simulated job is the pattern's next mandatory
#: one (Goossens: the initial k-sequence changes (m,k) schedulability).
INITIAL_HISTORY_MODES = ("met", "miss", "rpattern")


def flexibility_degree(history: Sequence[bool], mk: MKConstraint) -> int:
    """Flexibility degree of the next job given the last k-1 outcomes.

    Args:
        history: outcomes of the previous jobs, oldest first.  Only the
            last ``k - 1`` entries matter; shorter histories are padded on
            the *old* side with successes (the paper's boundary condition).
        mk: the task's (m,k)-constraint.

    Returns:
        The largest number of consecutive misses, starting with the next
        job, that keeps every k-window at >= m successes.  Always in
        ``[0, k - m]``.
    """
    k, m = mk.k, mk.m
    window: "list[int]" = [1] * (k - 1)
    tail = list(history[-(k - 1):]) if k > 1 else []
    if tail:
        window[-len(tail):] = [int(bool(flag)) for flag in tail]
    # ones_from[t] = number of ones among the last (k - 1) - (t - 1) entries,
    # i.e. the history part of the window ending at the t-th future miss.
    degree = 0
    ones = sum(window)
    for t in range(1, k - m + 1):
        # Window ending at future job t: last (k - t) history entries + t
        # misses.  Entries dropped from the old side: t - 1 of them.
        if t - 1 >= 1:
            ones -= window[t - 2]
        if ones >= m:
            degree = t
        else:
            break
    return degree


class MKHistory:
    """Sliding outcome window for one task, with FD queries.

    Records the success/miss outcome of each job as it is decided and
    answers :meth:`flexibility_degree` for the next upcoming job in O(1)
    amortized time: rewriting Definition 1, ``ones(last j entries)`` is
    nondecreasing in ``j``, so the binding constraint of ``FD >= d`` is
    the shortest suffix -- the last ``k - d`` entries must hold ``>= m``
    ones.  Hence with ``p`` = how deep into the window the m-th most
    recent success sits (1 = newest entry)::

        FD = k - max(p, m)        (0 when fewer than m successes remain)

    The class therefore maintains the sequence numbers of the successes
    currently inside the window (at most ``k - 1`` of them) alongside the
    window itself, and every :meth:`record` call updates both in O(1).

    Args:
        mk: the task's (m,k)-constraint.
        initial_met: boundary condition for jobs "before time zero".
            ``True`` (default) matches the paper's dynamic schemes;
            ``False`` reproduces the R-pattern's deeply-red pessimism.
    """

    __slots__ = ("mk", "_window", "_recorded", "_misses", "_seq", "_one_seqs")

    def __init__(self, mk: MKConstraint, initial_met: bool = True) -> None:
        if not isinstance(mk, MKConstraint):
            raise ModelError(f"mk must be an MKConstraint, got {mk!r}")
        self.mk = mk
        depth = max(mk.k - 1, 0)
        self._window: Deque[bool] = deque(
            [bool(initial_met)] * depth, maxlen=depth or None
        )
        if depth == 0:
            self._window = deque([], maxlen=1)
            self._window.clear()
        self._recorded = 0
        self._misses = 0
        # Sequence number of the newest window entry; the window holds
        # entries (seq - depth, seq].  Initial padding occupies 1..depth.
        self._seq = depth
        self._one_seqs: Deque[int] = deque(
            range(1, depth + 1) if initial_met else ()
        )

    @property
    def recorded(self) -> int:
        """Total number of outcomes recorded so far."""
        return self._recorded

    @property
    def misses(self) -> int:
        """Total number of misses recorded so far."""
        return self._misses

    def record(self, effective: bool) -> None:
        """Append the outcome of the most recently decided job."""
        k = self.mk.k
        if k > 1:
            self._window.append(bool(effective))
            self._seq += 1
            ones = self._one_seqs
            if effective:
                ones.append(self._seq)
            cutoff = self._seq - (k - 1)
            while ones and ones[0] <= cutoff:
                ones.popleft()
        self._recorded += 1
        if not effective:
            self._misses += 1

    def outcomes(self) -> "tuple[bool, ...]":
        """The retained window of recent outcomes, oldest first."""
        return tuple(self._window)

    def flexibility_degree(self) -> int:
        """FD of the *next* job of this task (Definition 1), in O(1)."""
        m = self.mk.m
        ones = self._one_seqs
        if len(ones) < m:
            return 0
        # The m-th most recent success lies p entries deep in the window.
        p = self._seq - ones[-m] + 1
        return self.mk.k - (p if p > m else m)

    def next_is_mandatory(self) -> bool:
        """True when the next job must execute (FD == 0)."""
        return self.flexibility_degree() == 0

    def would_violate(self, upcoming: Iterable[bool]) -> bool:
        """Whether appending ``upcoming`` outcomes would break the constraint.

        Used by the QoS monitor for lookahead checks; does not mutate.
        """
        bits = [int(flag) for flag in self._window] + [
            int(bool(flag)) for flag in upcoming
        ]
        k, m = self.mk.k, self.mk.m
        if len(bits) < k:
            return False
        window = sum(bits[:k])
        if window < m:
            return True
        for j in range(k, len(bits)):
            window += bits[j] - bits[j - k]
            if window < m:
                return True
        return False

    def __repr__(self) -> str:
        shown = "".join("1" if flag else "0" for flag in self._window)
        return f"MKHistory(mk={self.mk}, window='{shown}')"


def normalize_initial_history(value) -> str:
    """Normalize an initial-history knob to one of the named modes.

    Accepts the mode strings plus the legacy booleans (``True`` was the
    paper's all-met boundary, ``False`` the all-miss one).
    """
    if value is True:
        return "met"
    if value is False:
        return "miss"
    if value in INITIAL_HISTORY_MODES:
        return value
    raise ModelError(
        f"unknown initial-history mode {value!r}; "
        f"choose from {INITIAL_HISTORY_MODES}"
    )


def make_initial_history(mk: MKConstraint, mode: str = "met") -> MKHistory:
    """A fresh :class:`MKHistory` seeded with one boundary condition.

    The returned history has ``recorded == misses == 0`` regardless of
    mode -- the seed describes jobs *before* the simulated horizon, so it
    shapes the first flexibility degrees without polluting the counters
    the violation accounting reads.
    """
    if mode == "met":
        return MKHistory(mk, initial_met=True)
    if mode == "miss":
        return MKHistory(mk, initial_met=False)
    if mode == "rpattern":
        from .patterns import RPattern

        history = MKHistory(mk, initial_met=False)
        # Seed the k-1 window with the pattern's outcomes for jobs
        # j = 2..k, oldest first, so the next (first simulated) job sits
        # at j === 1 (mod k) -- the pattern's next mandatory slot.
        for bit in RPattern(mk).bits(mk.k)[1:]:
            history.record(bool(bit))
        history._recorded = 0
        history._misses = 0
        return history
    raise ModelError(
        f"unknown initial-history mode {mode!r}; "
        f"choose from {INITIAL_HISTORY_MODES}"
    )


def packed_initial_window(mk: MKConstraint, mode: str = "met") -> int:
    """The boundary window as a k-1-bit mask, newest outcome in bit 0.

    Matches the batch kernel's packed-history convention so the
    vectorized engine can seed ``fd_win`` bit-identically to the scalar
    engine's :func:`make_initial_history`.
    """
    outcomes = make_initial_history(mk, mode).outcomes()
    packed = 0
    for offset, outcome in enumerate(reversed(outcomes)):
        packed |= int(outcome) << offset
    return packed
