"""Runtime job instances.

A *logical job* J_ij is the j-th instance of task τ_i.  Under
standby-sparing a mandatory logical job materializes as two *copies* -- a
main copy on the primary processor and a backup copy on the spare -- while
an optional job materializes as a single copy on whichever processor the
policy selects.  :class:`Job` models one copy; the simulator links the two
copies of a mandatory job through :attr:`Job.sibling`.

Jobs live on the integer tick grid of the simulation (see
:mod:`repro.timebase`); the model layer's rational quantities are compiled
down before any ``Job`` exists.
"""

from __future__ import annotations

import enum
from typing import Optional

from ..errors import ModelError


class JobRole(enum.Enum):
    """What a job copy is, in standby-sparing terms."""

    MAIN = "main"          #: mandatory job's primary-processor copy
    BACKUP = "backup"      #: mandatory job's spare-processor copy
    OPTIONAL = "optional"  #: optional job (single copy, no backup)


class JobStatus(enum.Enum):
    """Lifecycle of one job copy inside the simulator."""

    PENDING = "pending"        #: released but not yet enqueued (postponed)
    READY = "ready"            #: in a ready queue, may be preempted-resumed
    RUNNING = "running"        #: currently executing
    COMPLETED = "completed"    #: ran to completion (may still have faulted)
    CANCELED = "canceled"      #: backup canceled because its main succeeded
    ABANDONED = "abandoned"    #: optional dropped (infeasible or policy skip)
    LOST = "lost"              #: copy destroyed by a permanent processor fault


#: Statuses after which a copy never executes again.  Hot paths (ready
#: queues, the engine's dispatch loop) test membership here directly
#: rather than through the :attr:`Job.is_finished` property.
FINISHED_STATUSES = frozenset(
    (
        JobStatus.COMPLETED,
        JobStatus.CANCELED,
        JobStatus.ABANDONED,
        JobStatus.LOST,
    )
)


class JobOutcome(enum.Enum):
    """Outcome of a *logical* job with respect to the (m,k) constraint."""

    EFFECTIVE = "effective"  #: counted as a success ("1" in the window)
    MISSED = "missed"        #: counted as a miss ("0" in the window)


class Job:
    """One schedulable copy of a logical job, in tick time.

    Attributes:
        task_index: priority index of the owning task (0 = highest).
        job_index: 1-based instance number j of J_ij.
        role: main / backup / optional.
        release: nominal release time r_ij in ticks.
        enqueue_time: time this copy becomes ready (release + postponement).
        deadline: absolute deadline d_ij in ticks.
        wcet: execution budget c_ij in ticks.
        remaining: ticks of execution still owed.
        status: copy lifecycle state.
        faulted: True when a transient fault will be detected at completion.
        sibling: the other copy of the same mandatory logical job, if any.
        processor: index of the processor this copy is bound to.
        queue_key: ready-queue priority key assigned by the simulator at
            copy creation ((task_index, job_index) for mandatory copies,
            (flexibility degree, task_index, job_index) for optionals).
            Kept on the copy itself so requeueing after preemption never
            needs a side table.
        speed: execution frequency of this copy (DVFS).  The int 1 for
            full speed (the default; every non-DVFS run), or an exact
            Fraction in (0, 1) for a slowed main copy -- its ``wcet``
            is then already the *stretched* tick budget, so the engine's
            time arithmetic needs no per-tick scaling.
    """

    __slots__ = (
        "task_index",
        "job_index",
        "role",
        "release",
        "enqueue_time",
        "deadline",
        "wcet",
        "remaining",
        "status",
        "faulted",
        "sibling",
        "processor",
        "completion_time",
        "started_at",
        "_name",
        "queue_key",
        "speed",
    )

    def __init__(
        self,
        task_index: int,
        job_index: int,
        role: JobRole,
        release: int,
        deadline: int,
        wcet: int,
        processor: int,
        enqueue_time: Optional[int] = None,
        name: str = "",
        speed: "int | object" = 1,
    ) -> None:
        if wcet <= 0:
            raise ModelError(f"job wcet must be positive ticks, got {wcet}")
        if deadline < release:
            raise ModelError(
                f"deadline {deadline} precedes release {release} for job "
                f"({task_index},{job_index})"
            )
        self.task_index = task_index
        self.job_index = job_index
        self.role = role
        self.release = release
        self.enqueue_time = release if enqueue_time is None else enqueue_time
        self.deadline = deadline
        self.wcet = wcet
        self.remaining = wcet
        self.status = JobStatus.PENDING
        self.faulted = False
        self.sibling: Optional[Job] = None
        self.processor = processor
        self.completion_time: Optional[int] = None
        self.started_at: Optional[int] = None
        self._name = name
        self.queue_key: "tuple[int, ...]" = (task_index, job_index)
        self.speed = speed

    @property
    def name(self) -> str:
        """Human-readable label ``J<i>,<j>``, built on demand.

        Only trace logging and ``repr`` read it, so the common stats-only
        path never pays for the f-string.
        """
        return self._name or f"J{self.task_index + 1},{self.job_index}"

    @property
    def executed(self) -> int:
        """Ticks of execution already consumed by this copy."""
        return self.wcet - self.remaining

    @property
    def is_finished(self) -> bool:
        """True when this copy will never execute again."""
        return self.status in FINISHED_STATUSES

    def can_finish_by_deadline(self, now: int) -> bool:
        """Whether the remaining budget fits before the deadline from ``now``.

        This is a *best-case* (no interference) feasibility check used to
        skip optional jobs that have no chance -- the paper drops O11 in
        Figure 2 on exactly this ground.
        """
        return now + self.remaining <= self.deadline

    def link_backup(self, backup: "Job") -> None:
        """Associate a mandatory main copy with its backup copy."""
        if self.role is not JobRole.MAIN or backup.role is not JobRole.BACKUP:
            raise ModelError("link_backup requires a MAIN copy and a BACKUP copy")
        self.sibling = backup
        backup.sibling = self

    def key(self) -> "tuple[int, int]":
        """Identity of the logical job: (task_index, job_index)."""
        return (self.task_index, self.job_index)

    def __repr__(self) -> str:
        return (
            f"Job({self.name}, role={self.role.value}, r={self.release}, "
            f"d={self.deadline}, c={self.wcet}, rem={self.remaining}, "
            f"status={self.status.value}, proc={self.processor})"
        )
