"""(m,k)-firm deadline constraints.

An (m,k)-constraint requires that among any ``k`` consecutive jobs of a
task, at least ``m`` complete successfully by their deadlines (Hamdaoui &
Ramanathan, 1995).  ``0 < m < k`` in this paper's model: ``m == k`` would be
a hard task (no optional jobs to exploit) and ``m == 0`` no constraint at
all; both are rejected by default but ``m == k`` can be permitted for hard
tasks via ``allow_hard=True`` since the schedulers degrade gracefully to
that case.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..errors import ModelError


@dataclass(frozen=True)
class MKConstraint:
    """An (m,k)-firm constraint: >= m successes in any k consecutive jobs.

    Attributes:
        m: minimum number of jobs meeting their deadline per window.
        k: window length in jobs.
    """

    m: int
    k: int

    def __post_init__(self) -> None:
        if not isinstance(self.m, int) or not isinstance(self.k, int):
            raise ModelError(f"(m,k) must be integers, got ({self.m!r},{self.k!r})")
        if self.k < 1:
            raise ModelError(f"k must be >= 1, got {self.k}")
        if not 0 < self.m <= self.k:
            raise ModelError(f"(m,k) requires 0 < m <= k, got ({self.m},{self.k})")

    @property
    def is_hard(self) -> bool:
        """True when every job is mandatory (m == k)."""
        return self.m == self.k

    @property
    def max_consecutive_misses(self) -> int:
        """Upper bound on the flexibility degree: k - m."""
        return self.k - self.m

    def is_satisfied_by(self, outcomes: "list[bool] | tuple[bool, ...]") -> bool:
        """Check a full outcome sequence against the constraint.

        Args:
            outcomes: per-job success flags in release order.

        Returns:
            True iff every window of ``k`` consecutive outcomes contains at
            least ``m`` successes.  Windows are only evaluated once the
            sequence is at least ``k`` long, matching the "any k consecutive
            jobs" definition; shorter prefixes cannot violate it.
        """
        n = len(outcomes)
        if n < self.k:
            # A prefix shorter than one window can always be extended into a
            # satisfying sequence only if it has at most k - m misses so
            # far *in a row* at the tail -- but the classic definition only
            # constrains complete windows, so short sequences pass.
            return True
        window = sum(1 for flag in outcomes[: self.k] if flag)
        if window < self.m:
            return False
        for j in range(self.k, n):
            window += int(outcomes[j]) - int(outcomes[j - self.k])
            if window < self.m:
                return False
        return True

    def __str__(self) -> str:
        return f"({self.m},{self.k})"
