"""Task, job, and (m,k)-constraint model layer.

This package contains the pure data model of the paper's system: periodic
tasks with (m,k)-firm deadline constraints, their jobs, static
mandatory/optional partitioning patterns, and the runtime outcome history
from which flexibility degrees are computed.
"""

from .mk import MKConstraint
from .task import Task
from .taskset import TaskSet
from .job import Job, JobOutcome, JobRole
from .patterns import (
    EPattern,
    Pattern,
    RPattern,
    RotatedPattern,
    is_window_periodic,
)
from .history import MKHistory, flexibility_degree

__all__ = [
    "MKConstraint",
    "Task",
    "TaskSet",
    "Job",
    "JobRole",
    "JobOutcome",
    "Pattern",
    "RPattern",
    "EPattern",
    "RotatedPattern",
    "is_window_periodic",
    "MKHistory",
    "flexibility_degree",
]
