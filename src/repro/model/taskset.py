"""Ordered collections of tasks with fixed-priority semantics.

The position of a task inside a :class:`TaskSet` *is* its priority: index 0
is the highest-priority task, matching the paper's "τj has lower priority
than τi if j > i" convention.  The class also exposes the aggregate
quantities the evaluation section sweeps over (total utilization and total
(m,k)-utilization) and the hyperperiods used as analysis horizons.
"""

from __future__ import annotations

import math
from fractions import Fraction
from typing import Iterable, Iterator, List, Sequence

from ..errors import ModelError
from ..timebase import TimeBase
from .task import Task


def _lcm(a: int, b: int) -> int:
    return a * b // math.gcd(a, b)


class TaskSet:
    """An immutable, priority-ordered set of periodic tasks."""

    __slots__ = ("_tasks", "_fingerprint")

    def __init__(self, tasks: Iterable[Task]) -> None:
        task_list: List[Task] = list(tasks)
        if not task_list:
            raise ModelError("a TaskSet needs at least one task")
        for position, task in enumerate(task_list):
            if not isinstance(task, Task):
                raise ModelError(f"element {position} is not a Task: {task!r}")
        self._fingerprint: "tuple | None" = None
        self._tasks = tuple(
            task if task.name else Task(
                task.period, task.deadline, task.wcet, task.mk,
                name=f"tau{position + 1}",
            )
            for position, task in enumerate(task_list)
        )

    def __len__(self) -> int:
        return len(self._tasks)

    def __iter__(self) -> Iterator[Task]:
        return iter(self._tasks)

    def __getitem__(self, index: int) -> Task:
        return self._tasks[index]

    @property
    def tasks(self) -> Sequence[Task]:
        """The tasks in priority order (index 0 = highest priority)."""
        return self._tasks

    def fingerprint(self) -> "tuple":
        """Hashable identity of the analysis-relevant parameters.

        The tuple of per-task ``(period, deadline, wcet, m, k)`` in
        priority order, with the temporal parameters as exact Fractions.
        Two task sets with equal fingerprints are indistinguishable to
        every offline analysis and to the simulator, so the fingerprint
        keys the :mod:`repro.analysis.cache` entries.  Names are
        deliberately excluded.  Computed once and memoized (the task set
        is immutable).
        """
        fp = self._fingerprint
        if fp is None:
            fp = tuple(
                (task.period, task.deadline, task.wcet, task.mk.m, task.mk.k)
                for task in self._tasks
            )
            self._fingerprint = fp
        return fp

    def priority_of(self, task: Task) -> int:
        """Index (= priority level) of a task; 0 is the highest priority."""
        for position, candidate in enumerate(self._tasks):
            if candidate is task:
                return position
        raise ModelError(f"task {task} is not a member of this TaskSet")

    def higher_priority(self, index: int) -> Sequence[Task]:
        """Tasks with strictly higher priority than the one at ``index``."""
        return self._tasks[:index]

    @property
    def utilization(self) -> Fraction:
        """Sum of C/P over all tasks."""
        return sum((task.utilization for task in self._tasks), Fraction(0))

    @property
    def mk_utilization(self) -> Fraction:
        """Sum of m*C/(k*P), the paper's x-axis quantity."""
        return sum((task.mk_utilization for task in self._tasks), Fraction(0))

    def hyperperiod(self) -> Fraction:
        """LCM of the task periods (on the common tick grid)."""
        base = self.timebase()
        ticks = 1
        for task in self._tasks:
            ticks = _lcm(ticks, base.to_ticks(task.period))
        return base.from_ticks(ticks)

    def mk_hyperperiod(self, upto_priority: "int | None" = None) -> Fraction:
        """LCM of k_i * P_i, the (m,k)-pattern hyperperiod.

        Args:
            upto_priority: when given, restrict to tasks with priority index
                <= this value -- Equation (5) of the paper uses
                ``LCM_{q <= i}(k_q P_q)``.
        """
        base = self.timebase()
        ticks = 1
        tasks = self._tasks if upto_priority is None else self._tasks[: upto_priority + 1]
        for task in tasks:
            ticks = _lcm(ticks, task.mk.k * base.to_ticks(task.period))
        return base.from_ticks(ticks)

    def timebase(self) -> TimeBase:
        """The coarsest tick grid exactly representing all task parameters."""
        values = []
        for task in self._tasks:
            values.extend((task.period, task.deadline, task.wcet))
        return TimeBase.for_values(values)

    def __repr__(self) -> str:
        inner = ", ".join(str(task) for task in self._tasks)
        return f"TaskSet([{inner}])"
