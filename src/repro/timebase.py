"""Exact rational time and its compilation to integer simulation ticks.

The paper's worked examples use non-integer times (a deadline of 2.5 ms in
Figure 3/4), and discrete-event simulation with floating point time is a
well-known source of Heisenbugs (events that compare almost-equal, energy
totals off by 1e-13, ...).  This module removes the problem at the root:

* the *model* layer stores every time quantity as :class:`fractions.Fraction`
  (converted losslessly from ``int``/``str``/``Fraction`` and safely from
  ``float`` via ``Fraction(value).limit_denominator``);
* before a simulation or analysis runs, a :class:`TimeBase` is derived from
  all the time quantities involved: its resolution is the least common
  multiple of their denominators, so every quantity becomes an exact
  ``int`` number of ticks.

All hot-path arithmetic is then plain integer arithmetic.
"""

from __future__ import annotations

import math
from fractions import Fraction
from typing import Iterable, Union

from .errors import TimeBaseError

#: Types accepted wherever the public API takes a time quantity.
TimeLike = Union[int, float, str, Fraction]

#: Maximum denominator used when interpreting a float as an exact rational.
#: 10**6 comfortably covers times written with up to six decimal digits
#: (the paper uses at most one) while rejecting float noise.
_FLOAT_DENOMINATOR_LIMIT = 10**6


def as_fraction(value: TimeLike) -> Fraction:
    """Convert a time-like value to an exact :class:`Fraction`.

    ``int``, ``str`` (e.g. ``"5/2"``) and ``Fraction`` convert losslessly.
    ``float`` values are snapped to the nearest rational with denominator
    at most 10**6, which recovers the intended decimal (``2.5`` ->
    ``5/2``) rather than the exact binary expansion.

    Raises:
        TimeBaseError: if the value is not finite or not a supported type.
    """
    if isinstance(value, bool):
        raise TimeBaseError(f"booleans are not valid times: {value!r}")
    if isinstance(value, Fraction):
        return value
    if isinstance(value, int):
        return Fraction(value)
    if isinstance(value, str):
        try:
            return Fraction(value)
        except (ValueError, ZeroDivisionError) as exc:
            raise TimeBaseError(f"cannot parse time string {value!r}") from exc
    if isinstance(value, float):
        if not math.isfinite(value):
            raise TimeBaseError(f"time must be finite, got {value!r}")
        return Fraction(value).limit_denominator(_FLOAT_DENOMINATOR_LIMIT)
    raise TimeBaseError(f"unsupported time type: {type(value).__name__}")


class TimeBase:
    """Maps exact rational times onto an integer tick grid.

    A ``TimeBase`` with ``ticks_per_unit = q`` represents the rational time
    ``t`` as the integer ``t * q``; construction via :meth:`for_values`
    guarantees the representation is exact for every value supplied.

    Attributes:
        ticks_per_unit: number of ticks per model time unit (e.g. per ms).
    """

    __slots__ = ("ticks_per_unit",)

    def __init__(self, ticks_per_unit: int = 1) -> None:
        if not isinstance(ticks_per_unit, int) or ticks_per_unit < 1:
            raise TimeBaseError(
                f"ticks_per_unit must be a positive int, got {ticks_per_unit!r}"
            )
        self.ticks_per_unit = ticks_per_unit

    @classmethod
    def for_values(cls, values: Iterable[TimeLike]) -> "TimeBase":
        """Build the coarsest grid on which all ``values`` are integers."""
        denominator = 1
        for value in values:
            fraction = as_fraction(value)
            denominator = denominator * fraction.denominator // math.gcd(
                denominator, fraction.denominator
            )
        return cls(denominator)

    def to_ticks(self, value: TimeLike) -> int:
        """Convert a time quantity to ticks; must land exactly on the grid."""
        fraction = as_fraction(value) * self.ticks_per_unit
        if fraction.denominator != 1:
            raise TimeBaseError(
                f"time {value!r} is not representable at resolution "
                f"1/{self.ticks_per_unit}"
            )
        return fraction.numerator

    def from_ticks(self, ticks: int) -> Fraction:
        """Convert ticks back to exact model time units."""
        return Fraction(ticks, self.ticks_per_unit)

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, TimeBase):
            return NotImplemented
        return self.ticks_per_unit == other.ticks_per_unit

    def __hash__(self) -> int:
        return hash((TimeBase, self.ticks_per_unit))

    def __repr__(self) -> str:
        return f"TimeBase(ticks_per_unit={self.ticks_per_unit})"
