"""Per-task QoS timelines: outcome strings, window health, urgency traces.

Debugging aid and reporting surface: renders each task's job outcomes as
a compact string (``"1101..."``), computes the per-window success counts,
and reconstructs the flexibility-degree trajectory the schedulers saw --
useful when staring at why a scheme selected or skipped a particular job.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List

from ..model.history import make_initial_history
from ..model.mk import MKConstraint
from ..sim.engine import SimulationResult


@dataclass(frozen=True)
class TaskTimeline:
    """One task's QoS trajectory over a run.

    Attributes:
        task_index: the task.
        outcomes: per-job success flags in release order.
        flexibility_degrees: FD of each job at its release (reconstructed
            with the engine's boundary condition; pass the run's
            ``initial_history`` mode to match a non-default run).
        window_successes: successes in the k-window ending at each job
            (only defined from job k onward; earlier entries are None).
        worst_window: the minimum over defined window success counts
            (equals or exceeds m iff the constraint held).
    """

    task_index: int
    mk: MKConstraint
    outcomes: List[bool]
    flexibility_degrees: List[int]
    window_successes: List["int | None"]

    @property
    def worst_window(self) -> "int | None":
        defined = [w for w in self.window_successes if w is not None]
        return min(defined) if defined else None

    @property
    def satisfied(self) -> bool:
        worst = self.worst_window
        return worst is None or worst >= self.mk.m

    def outcome_string(self) -> str:
        """Outcomes as '1'/'0' digits, e.g. '110110'."""
        return "".join("1" if flag else "0" for flag in self.outcomes)

    def render(self) -> str:
        """A multi-line human-readable summary."""
        lines = [
            f"task {self.task_index + 1} {self.mk}: "
            f"{self.outcome_string() or '(no jobs)'}",
            f"  FDs at release: {self.flexibility_degrees}",
        ]
        worst = self.worst_window
        if worst is not None:
            verdict = "OK" if self.satisfied else "VIOLATED"
            lines.append(
                f"  worst window: {worst}/{self.mk.k} successes "
                f"(need {self.mk.m}) -> {verdict}"
            )
        return "\n".join(lines)


def task_timeline(
    result: SimulationResult,
    task_index: int,
    initial_history: str = "met",
) -> TaskTimeline:
    """Build one task's timeline from a simulation result.

    ``initial_history`` must match the boundary condition the run was
    simulated under (see :data:`repro.model.history.INITIAL_HISTORY_MODES`)
    for the reconstructed FDs to equal what the scheduler saw.
    """
    task = result.taskset[task_index]
    outcomes = result.trace.outcomes_for_task(task_index)
    history = make_initial_history(task.mk, initial_history)
    flexibility_degrees: List[int] = []
    for outcome in outcomes:
        flexibility_degrees.append(history.flexibility_degree())
        history.record(outcome)
    window_successes: List["int | None"] = []
    for end in range(len(outcomes)):
        if end + 1 < task.mk.k:
            window_successes.append(None)
        else:
            window = outcomes[end + 1 - task.mk.k : end + 1]
            window_successes.append(sum(window))
    return TaskTimeline(
        task_index=task_index,
        mk=task.mk,
        outcomes=list(outcomes),
        flexibility_degrees=flexibility_degrees,
        window_successes=window_successes,
    )


def all_timelines(
    result: SimulationResult, initial_history: str = "met"
) -> Dict[int, TaskTimeline]:
    """Timelines for every task of a run."""
    return {
        index: task_timeline(result, index, initial_history)
        for index in range(len(result.taskset))
    }


def render_timelines(
    result: SimulationResult, initial_history: str = "met"
) -> str:
    """All tasks' timelines as one report string."""
    return "\n".join(
        timeline.render()
        for timeline in all_timelines(result, initial_history).values()
    )
