"""(m,k)-constraint verification over simulation results.

The engine records an outcome for every released logical job; this module
replays those outcomes through sliding windows and reports every violated
window -- the *dynamic failures* of the (m,k) literature -- rather than
just a boolean, so tests and benches can localize exactly where a scheme
went wrong.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Sequence

from ..model.mk import MKConstraint
from ..sim.engine import SimulationResult


@dataclass(frozen=True)
class MKViolation:
    """One violated window of a task's (m,k)-constraint.

    Attributes:
        task_index: the violating task.
        window_end_job: 1-based index of the last job in the bad window.
        successes: successes observed in that window (< m).
    """

    task_index: int
    window_end_job: int
    successes: int


class MKMonitor:
    """Streams job outcomes and detects (m,k) violations online."""

    def __init__(self, mk: MKConstraint) -> None:
        self.mk = mk
        self._outcomes: List[bool] = []
        self.violations: List[MKViolation] = []

    def record(self, effective: bool, task_index: int = 0) -> None:
        """Record the next job's outcome; logs a violation if one closes."""
        self._outcomes.append(bool(effective))
        n = len(self._outcomes)
        if n >= self.mk.k:
            window = self._outcomes[n - self.mk.k :]
            successes = sum(window)
            if successes < self.mk.m:
                self.violations.append(
                    MKViolation(
                        task_index=task_index,
                        window_end_job=n,
                        successes=successes,
                    )
                )

    @property
    def satisfied(self) -> bool:
        return not self.violations

    @property
    def outcomes(self) -> Sequence[bool]:
        return tuple(self._outcomes)


def verify_mk(result: SimulationResult) -> List[MKViolation]:
    """All (m,k) violations of a simulation run, across tasks.

    Only *complete* jobs are judged: the trailing jobs whose deadlines fall
    beyond the horizon are still recorded by the engine (their deadline
    events drain), so the outcome list is complete by construction.

    Requires a trace run: stats-only results carry per-task violation
    *counts* (``result.stats.violations``) but not the per-window detail
    this report localizes.
    """
    if result.trace is None:
        raise ValueError(
            "verify_mk needs a trace run (collect_trace=True); stats-only "
            "results expose per-task violation counts via result.stats"
        )
    violations: List[MKViolation] = []
    for index, task in enumerate(result.taskset):
        monitor = MKMonitor(task.mk)
        for effective in result.trace.outcomes_for_task(index):
            monitor.record(effective, task_index=index)
        violations.extend(monitor.violations)
    return violations


def count_mk_violations(result: SimulationResult) -> int:
    """Number of violated (m,k) windows in a run, regardless of mode.

    The single counting definition shared by every consumer: trace runs
    replay the recorded outcomes through :func:`verify_mk`; stats-only
    runs sum the engine's per-task online window counters, which track
    the same sliding windows.  Both paths count one violation per job
    index that closes a window with fewer than m successes.
    """
    if result.trace is None:
        stats = result.stats
        if stats is None:  # pragma: no cover - engine fills one of the two
            raise ValueError("result has neither trace nor stats")
        return sum(stats.violations)
    return len(verify_mk(result))
