"""QoS monitoring: (m,k)-constraint verification and miss statistics."""

from .monitor import MKMonitor, MKViolation, verify_mk
from .metrics import QoSMetrics, collect_metrics
from .timeline import TaskTimeline, all_timelines, render_timelines, task_timeline

__all__ = [
    "MKMonitor",
    "MKViolation",
    "verify_mk",
    "QoSMetrics",
    "collect_metrics",
    "TaskTimeline",
    "task_timeline",
    "all_timelines",
    "render_timelines",
]
