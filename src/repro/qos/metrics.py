"""Aggregate QoS and scheduling metrics for one simulation run."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict

from ..model.job import JobOutcome
from ..sim.engine import SimulationResult
from .monitor import count_mk_violations


@dataclass(frozen=True)
class QoSMetrics:
    """Counts summarizing a run's quality of service.

    Attributes:
        released: logical jobs released.
        effective: jobs counted as meeting their deadline.
        missed: jobs counted as misses.
        mandatory: jobs classified mandatory at release.
        optional_executed: jobs classified optional and given a copy.
        skipped: jobs skipped outright at release.
        mk_violations: number of violated (m,k) windows (0 = guaranteed).
        transient_faults: transient faults detected during the run.
    """

    released: int
    effective: int
    missed: int
    mandatory: int
    optional_executed: int
    skipped: int
    mk_violations: int
    transient_faults: int

    @property
    def miss_ratio(self) -> float:
        return self.missed / self.released if self.released else 0.0

    @property
    def mandatory_ratio(self) -> float:
        return self.mandatory / self.released if self.released else 0.0

    def as_dict(self) -> Dict[str, float]:
        """Flat dict for tabular reporting."""
        return {
            "released": self.released,
            "effective": self.effective,
            "missed": self.missed,
            "mandatory": self.mandatory,
            "optional_executed": self.optional_executed,
            "skipped": self.skipped,
            "mk_violations": self.mk_violations,
            "transient_faults": self.transient_faults,
            "miss_ratio": self.miss_ratio,
            "mandatory_ratio": self.mandatory_ratio,
        }


def collect_metrics(result: SimulationResult) -> QoSMetrics:
    """Compute :class:`QoSMetrics` from a simulation result.

    Stats-only runs (``result.trace is None``) already carry every count
    in ``result.stats``; trace runs derive them from the records.  Both
    paths yield identical metrics for the same run.
    """
    if result.trace is None:
        stats = result.stats
        if stats is None:  # pragma: no cover - engine fills one of the two
            raise ValueError("result has neither trace nor stats")
        return QoSMetrics(
            released=result.released_jobs,
            effective=stats.effective,
            missed=stats.missed,
            mandatory=stats.mandatory,
            optional_executed=stats.optional_executed,
            skipped=stats.skipped,
            mk_violations=count_mk_violations(result),
            transient_faults=result.transient_fault_count,
        )
    effective = 0
    missed = 0
    mandatory = 0
    optional_executed = 0
    skipped = 0
    for record in result.trace.records.values():
        if record.outcome is JobOutcome.EFFECTIVE:
            effective += 1
        elif record.outcome is JobOutcome.MISSED:
            missed += 1
        if record.classified_as == "mandatory":
            mandatory += 1
        elif record.classified_as == "optional":
            optional_executed += 1
        elif record.classified_as == "skipped":
            skipped += 1
    return QoSMetrics(
        released=result.released_jobs,
        effective=effective,
        missed=missed,
        mandatory=mandatory,
        optional_executed=optional_executed,
        skipped=skipped,
        mk_violations=count_mk_violations(result),
        transient_faults=result.transient_fault_count,
    )
