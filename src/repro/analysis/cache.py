"""Shared memoization for offline analyses.

Every offline analysis in this package (response times, promotion times,
postponement intervals, analysis horizons) is a pure function of the task
parameters and the tick grid.  Sweeps run the same task set through several
schemes back to back, and the selective/hybrid/dual-priority policies each
re-derive the same quantities in :meth:`prepare`; without memoization the
offline analysis dominates the simulation itself (it was ~60% of
``run_policy`` wall time on the microbenchmark workload).

The cache key is ``(analysis kind, TaskSet.fingerprint(), ticks_per_unit,
*parameters)``.  The fingerprint is the tuple of analysis-relevant task
parameters -- exact :class:`~fractions.Fraction` values, not floats -- so
two structurally identical task sets share entries even across separate
:class:`~repro.model.taskset.TaskSet` objects (e.g. regenerated from the
same seed in a worker process).

Only calls that are fully described by the key are memoized: analyses
taking an explicit ``patterns`` argument bypass the cache, because pattern
objects carry behaviour, not just data.  Cached results are cloned on the
way out so callers can mutate their copy freely.

The cache is per process.  Sweep workers each hold their own instance,
which is exactly the sharing the worker protocol needs: one worker runs
every scheme for a (bin, set) descriptor, so the second and third scheme
hit the entries the first one filled.
"""

from __future__ import annotations

import threading
from collections import OrderedDict
from typing import Any, Callable, Tuple

#: Hashable cache key: (kind, fingerprint, ticks_per_unit, *parameters).
CacheKey = Tuple[Any, ...]


class AnalysisCache:
    """A small thread-safe LRU cache with hit/miss accounting.

    The lock is *not* held while a miss computes, so cached analyses may
    nest (postponement intervals call promotion times, both memoized).
    Two threads racing on the same missing key may both compute it; the
    results are identical (the analyses are pure), so the race is benign.
    """

    __slots__ = ("maxsize", "hits", "misses", "_entries", "_lock")

    def __init__(self, maxsize: int = 256) -> None:
        if maxsize < 1:
            raise ValueError(f"maxsize must be >= 1, got {maxsize}")
        self.maxsize = maxsize
        self.hits = 0
        self.misses = 0
        self._entries: "OrderedDict[CacheKey, Any]" = OrderedDict()
        self._lock = threading.Lock()

    def get(self, key: CacheKey, compute: Callable[[], Any]) -> Any:
        """The cached value for ``key``, computing and storing on a miss."""
        with self._lock:
            if key in self._entries:
                self.hits += 1
                self._entries.move_to_end(key)
                return self._entries[key]
            self.misses += 1
        value = compute()
        with self._lock:
            self._entries[key] = value
            self._entries.move_to_end(key)
            while len(self._entries) > self.maxsize:
                self._entries.popitem(last=False)
        return value

    def clear(self) -> None:
        """Drop every entry and reset the hit/miss counters."""
        with self._lock:
            self._entries.clear()
            self.hits = 0
            self.misses = 0

    def __len__(self) -> int:
        return len(self._entries)

    def __repr__(self) -> str:
        return (
            f"AnalysisCache(entries={len(self._entries)}, "
            f"hits={self.hits}, misses={self.misses})"
        )


_CACHE = AnalysisCache()


def analysis_cache() -> AnalysisCache:
    """The process-wide cache shared by all memoized analyses."""
    return _CACHE


def shared_analysis(kind, taskset, timebase, params, compute):
    """Memoize ``compute()`` under the canonical analysis key.

    The key convention -- ``(kind, TaskSet.fingerprint(), ticks_per_unit,
    *params)`` -- is easy to get subtly wrong at call sites (forgetting the
    tick grid makes structurally equal task sets on different grids share
    an entry); this helper centralizes it.  ``params`` must be a tuple of
    hashable values that, together with the kind, fully describe the call.
    """
    key = (kind, taskset.fingerprint(), timebase.ticks_per_unit, *params)
    return _CACHE.get(key, compute)
