"""Reliability analysis under the Poisson transient-fault model.

The standby-sparing literature (Zhu et al., Ejlali et al.) quantifies
fault-tolerance as the probability that a job -- or any job in a window /
hyperperiod -- remains uncovered.  Under the paper's model a transient
fault hits an execution of length ``c`` with probability
``p = 1 - exp(-lambda * c)``, independently per copy:

* an *unprotected* execution (single copy, no recovery) fails with p;
* a standby-sparing mandatory job fails only if **both** copies fault:
  p^2 (the backup executes fully whenever the main faults);
* re-execution with r recovery attempts fails with p^(r+1) *if* the
  recoveries fit before the deadline (time feasibility is the scheduler's
  job; this module quantifies the probabilistic part).

These closed forms are exact for the model simulated by
:mod:`repro.faults.transient`, which the tests verify by Monte Carlo.
"""

from __future__ import annotations

import math
from typing import List, Optional

from ..errors import ConfigurationError
from ..model.taskset import TaskSet
from ..timebase import TimeBase


def fault_probability(rate: float, execution_units: float) -> float:
    """P(at least one transient fault during an execution)."""
    if rate < 0:
        raise ConfigurationError(f"rate must be >= 0, got {rate}")
    if execution_units < 0:
        raise ConfigurationError(
            f"execution time must be >= 0, got {execution_units}"
        )
    return 1.0 - math.exp(-rate * execution_units)


def job_failure_probability(
    rate: float, execution_units: float, copies: int = 2
) -> float:
    """P(all ``copies`` independent executions of one job fault)."""
    if copies < 1:
        raise ConfigurationError(f"copies must be >= 1, got {copies}")
    return fault_probability(rate, execution_units) ** copies


def task_window_failure_probability(
    rate: float,
    execution_units: float,
    jobs_in_window: int,
    copies: int = 2,
) -> float:
    """P(at least one of ``jobs_in_window`` duplicated jobs fails)."""
    if jobs_in_window < 0:
        raise ConfigurationError("jobs_in_window must be >= 0")
    per_job = job_failure_probability(rate, execution_units, copies)
    return 1.0 - (1.0 - per_job) ** jobs_in_window


def taskset_failure_probability(
    taskset: TaskSet,
    rate: float,
    horizon_units: float,
    copies: int = 2,
    mandatory_only: bool = True,
    timebase: Optional[TimeBase] = None,
) -> float:
    """P(any protected job of any task fails within the horizon).

    Args:
        taskset: the task set.
        rate: transient fault rate per time unit.
        horizon_units: mission length in time units.
        copies: redundant executions per protected job.
        mandatory_only: count only the mandatory (m out of k) jobs --
            optional jobs have no reliability requirement in the (m,k)
            model (their loss is absorbed by the constraint).
    """
    survival = 1.0
    for task in taskset:
        jobs = int(horizon_units // float(task.period))
        if mandatory_only:
            jobs = jobs * task.mk.m // task.mk.k
        per_job = job_failure_probability(rate, float(task.wcet), copies)
        survival *= (1.0 - per_job) ** jobs
    return 1.0 - survival


def reliability_comparison(
    taskset: TaskSet,
    rate: float,
    horizon_units: float,
) -> List[dict]:
    """Failure probabilities of the redundancy styles, for reporting.

    Returns one row per style: no protection, standby-sparing (2 copies),
    and re-execution with 1 and 2 recoveries.
    """
    styles = [
        ("unprotected", 1),
        ("standby-sparing", 2),
        ("re-execution (1 retry)", 2),
        ("re-execution (2 retries)", 3),
    ]
    rows = []
    for label, copies in styles:
        rows.append(
            {
                "style": label,
                "copies": copies,
                "failure_probability": taskset_failure_probability(
                    taskset, rate, horizon_units, copies=copies
                ),
            }
        )
    return rows
