"""Offline analysis: response times, promotion times, postponement intervals.

Everything in this package operates on the integer tick grid produced by
:meth:`repro.model.TaskSet.timebase`, so all fixed-point iterations and
ceiling divisions are exact.
"""

from .cache import AnalysisCache, analysis_cache
from .hyperperiod import (
    analysis_horizon,
    lcm_ticks,
    mk_hyperperiod_ticks,
    period_hyperperiod_ticks,
)
from .rta import response_time, response_times, response_time_mandatory
from .promotion import promotion_time, promotion_times
from .demand import mandatory_job_count, mandatory_demand, released_job_count
from .postponement import (
    PostponementResult,
    inspecting_points,
    job_postponement_interval,
    task_postponement_intervals,
)
from .schedulability import (
    is_rpattern_schedulable,
    mandatory_miss_exists,
    rta_mandatory_schedulable,
    simulate_mandatory_fp,
    simulate_mandatory_schedule,
)
from .rotation import optimize_rotations, schedulability_margin
from .sensitivity import (
    critical_scaling_factor,
    per_task_slack,
    scale_wcets,
)
from .reliability import (
    fault_probability,
    job_failure_probability,
    reliability_comparison,
    taskset_failure_probability,
)
from .energy_bounds import (
    backup_overlap_bound,
    dp_energy_bound,
    selective_energy_bound,
)

__all__ = [
    "AnalysisCache",
    "analysis_cache",
    "analysis_horizon",
    "mk_hyperperiod_ticks",
    "period_hyperperiod_ticks",
    "lcm_ticks",
    "response_time",
    "response_times",
    "response_time_mandatory",
    "promotion_time",
    "promotion_times",
    "mandatory_job_count",
    "mandatory_demand",
    "released_job_count",
    "PostponementResult",
    "inspecting_points",
    "job_postponement_interval",
    "task_postponement_intervals",
    "is_rpattern_schedulable",
    "mandatory_miss_exists",
    "rta_mandatory_schedulable",
    "simulate_mandatory_fp",
    "simulate_mandatory_schedule",
    "optimize_rotations",
    "schedulability_margin",
    "critical_scaling_factor",
    "per_task_slack",
    "scale_wcets",
    "fault_probability",
    "job_failure_probability",
    "reliability_comparison",
    "taskset_failure_probability",
    "backup_overlap_bound",
    "dp_energy_bound",
    "selective_energy_bound",
]
