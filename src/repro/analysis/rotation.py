"""Pattern rotation optimization (the Quan & Hu [13] lever).

The deeply-red R-pattern releases every task's mandatory burst at the
window start, so under synchronous release all bursts collide -- that is
the worst case Theorem 1 leans on, but it also makes the admission test
conservative: many task sets become schedulable if the mandatory windows
of different tasks are *rotated* against each other.

This module provides:

* :func:`schedulability_margin` -- the minimum slack
  ``deadline - completion`` over every mandatory job in the simulated
  schedule (negative = unschedulable), the objective rotations maximize;
* :func:`optimize_rotations` -- coordinate-descent search over per-task
  rotations: repeatedly pick, for one task at a time, the rotation that
  maximizes the margin, until a fixed point.

Rotated patterns keep the steady-state (m,k)-guarantee (every window of k
consecutive jobs sees one full circular window) and plug directly into
``MKSSStatic``/``MKSSDualPriority`` via their ``patterns`` argument.
"""

from __future__ import annotations

from typing import List, Optional, Sequence, Tuple

from ..model.patterns import Pattern, RPattern, RotatedPattern
from ..model.taskset import TaskSet
from ..timebase import TimeBase
from .hyperperiod import analysis_horizon
from .schedulability import simulate_mandatory_schedule


def schedulability_margin(
    taskset: TaskSet,
    patterns: Sequence[Pattern],
    timebase: Optional[TimeBase] = None,
    horizon_ticks: Optional[int] = None,
) -> int:
    """Minimum (deadline - completion) over all mandatory jobs, in ticks.

    Positive: schedulable with that much slack on the tightest job.
    Negative: at least one mandatory job misses by that many ticks.
    """
    base = timebase or taskset.timebase()
    completions = simulate_mandatory_schedule(
        taskset, base, patterns, horizon_ticks
    )
    if not completions:
        return 0
    return min(deadline - finish for _, _, finish, deadline in completions)


def optimize_rotations(
    taskset: TaskSet,
    timebase: Optional[TimeBase] = None,
    horizon_ticks: Optional[int] = None,
    max_rounds: int = 4,
) -> Tuple[List[int], List[Pattern]]:
    """Search per-task R-pattern rotations maximizing the margin.

    Coordinate descent from the all-zero (deeply-red) starting point,
    lowest-priority task first (low-priority tasks gain the most from
    dodging high-priority bursts).  The k_i are at most 20, so each round
    costs at most ``sum(k_i)`` schedule simulations.

    Returns:
        ``(rotations, patterns)`` -- the chosen rotation per task and the
        corresponding pattern objects (a plain :class:`RPattern` where the
        rotation is 0).
    """
    base = timebase or taskset.timebase()
    horizon = (
        analysis_horizon(taskset, base)
        if horizon_ticks is None
        else horizon_ticks
    )
    rotations = [0] * len(taskset)

    def patterns_for(current: Sequence[int]) -> List[Pattern]:
        result: List[Pattern] = []
        for index, task in enumerate(taskset):
            red = RPattern(task.mk)
            if current[index] % task.mk.k == 0:
                result.append(red)
            else:
                result.append(RotatedPattern(red, current[index]))
        return result

    best_margin = schedulability_margin(
        taskset, patterns_for(rotations), base, horizon
    )
    for _ in range(max_rounds):
        improved = False
        for index in reversed(range(len(taskset))):
            k = taskset[index].mk.k
            best_rotation = rotations[index]
            for candidate in range(k):
                if candidate == rotations[index]:
                    continue
                trial = list(rotations)
                trial[index] = candidate
                margin = schedulability_margin(
                    taskset, patterns_for(trial), base, horizon
                )
                if margin > best_margin:
                    best_margin = margin
                    best_rotation = candidate
                    improved = True
            rotations[index] = best_rotation
        if not improved:
            break
    return rotations, patterns_for(rotations)
