"""Backup release postponement analysis (Definitions 2-5 of the paper).

The selective scheme delays every backup job J'_ij on the spare processor
by a per-task *release postponement interval* θ_i, computed offline from
the static R-pattern:

* **Inspecting points** (Definition 3) of J'_ij: its absolute deadline
  d_ij, plus every postponed release time r̃_kl of a higher-priority backup
  job falling strictly inside (r_ij, d_ij).

* **Job postponement interval** (Definition 4)::

      θ_ij = max over inspecting points t̄ of
             t̄ - (c_ij + Σ_{k<i, d_kl > r_ij, r̃_kl < t̄} c_kl) - r_ij

  The intuition: if J'_ij's release is pushed to r_ij + θ_ij it can still
  absorb all higher-priority backup work that becomes ready before some
  inspecting point t̄ and complete by t̄ <= d_ij.

* **Task postponement interval** (Definition 5): θ_i is the minimum θ_ij
  over the mandatory jobs inside the priority-i (m,k)-hyperperiod
  ``LCM_{q<=i}(k_q P_q)`` (bounded by the analysis horizon, see
  :mod:`repro.analysis.hyperperiod`).

Intervals are computed in *descending* priority order because the
postponed releases of higher-priority backups are the inspecting points of
lower-priority ones.  Finally θ_i is floored at the dual-priority
promotion time Y_i, which is always safe (the paper states this fallback;
its "R_i" is read as the promotion-based postponement, see DESIGN.md).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from ..errors import AnalysisError
from ..model.patterns import Pattern, RPattern
from ..model.taskset import TaskSet
from ..timebase import TimeBase
from .cache import analysis_cache
from .hyperperiod import mk_hyperperiod_ticks
from .promotion import promotion_times


@dataclass
class PostponementResult:
    """Outcome of the offline postponement analysis (all times in ticks).

    Attributes:
        thetas: per-task release postponement interval θ_i, priority order.
        promotions: per-task promotion time Y_i (the safe floor).
        raw_thetas: θ_i before flooring at Y_i (for reporting/ablation).
        job_thetas: per task, the list of (job_index, θ_ij) examined.
        horizon: the analysis horizon in ticks.
    """

    thetas: List[int]
    promotions: List[int]
    raw_thetas: List[int]
    job_thetas: Dict[int, List[Tuple[int, int]]] = field(default_factory=dict)
    horizon: int = 0

    def postponed_release(self, task_index: int, release_ticks: int) -> int:
        """r̃ = r + θ_i for a backup job of the given task (Equation 3)."""
        return release_ticks + self.thetas[task_index]


def _mandatory_jobs_before(
    pattern: Pattern, period: int, limit: int
) -> List[int]:
    """1-based mandatory job indices with release strictly before ``limit``."""
    if limit <= 0:
        return []
    last = -(-limit // period)  # jobs 1..last have release < limit
    if (last - 1) * period >= limit:
        last -= 1
    return [j for j in range(1, last + 1) if pattern.is_mandatory(j)]


def inspecting_points(
    release: int,
    deadline: int,
    hp_postponed_releases: Sequence[int],
) -> List[int]:
    """Inspecting points of a backup job (Definition 3), sorted ascending.

    Args:
        release: r_ij in ticks.
        deadline: d_ij in ticks.
        hp_postponed_releases: postponed release times r̃_kl of all
            higher-priority backup jobs (any range; filtered here).
    """
    points = {deadline}
    for point in hp_postponed_releases:
        if release < point < deadline:
            points.add(point)
    return sorted(points)


def job_postponement_interval(
    release: int,
    deadline: int,
    wcet: int,
    hp_jobs: Sequence[Tuple[int, int, int]],
) -> int:
    """θ_ij per Definition 4.

    Args:
        release: r_ij in ticks.
        deadline: d_ij in ticks.
        wcet: c_ij in ticks.
        hp_jobs: higher-priority backup jobs as tuples
            ``(postponed_release, absolute_deadline, wcet)`` in ticks.

    Returns:
        The job release postponement interval θ_ij (may be negative when
        the job has no slack at all; callers floor the per-task minimum).
    """
    relevant = [
        (pr, dl, c) for (pr, dl, c) in hp_jobs if dl > release
    ]
    points = inspecting_points(release, deadline, [pr for pr, _, _ in relevant])
    best: Optional[int] = None
    for t_bar in points:
        interference = sum(c for pr, _, c in relevant if pr < t_bar)
        candidate = t_bar - (wcet + interference) - release
        if best is None or candidate > best:
            best = candidate
    if best is None:  # pragma: no cover - deadline is always a point
        raise AnalysisError("a backup job must have at least one inspecting point")
    return best


def task_postponement_intervals(
    taskset: TaskSet,
    timebase: Optional[TimeBase] = None,
    patterns: Optional[Sequence[Pattern]] = None,
    horizon_ticks: Optional[int] = None,
    floor_at_promotion: bool = True,
) -> PostponementResult:
    """Compute θ_i for every task (Definition 5), priority order.

    Args:
        taskset: the task set (priority = index).
        timebase: tick grid; derived from the task set when omitted.
        patterns: static patterns (default: R-patterns).
        horizon_ticks: cap on each task's examination window
            ``LCM_{q<=i}(k_q P_q)``; ``None`` uses the full LCM (can be
            huge for random task sets -- prefer passing the simulation
            horizon).
        floor_at_promotion: apply the θ_i := max(θ_i, Y_i) safety floor.

    Returns:
        A :class:`PostponementResult` with per-task θ_i and diagnostics.
    """
    base = timebase or taskset.timebase()
    if patterns is None:
        # Fully determined by the key -> memoized.  Explicit patterns
        # carry behaviour and bypass the cache.
        key = (
            "postponement",
            taskset.fingerprint(),
            base.ticks_per_unit,
            horizon_ticks,
            floor_at_promotion,
        )
        cached = analysis_cache().get(
            key,
            lambda: _task_postponement_intervals(
                taskset, base, None, horizon_ticks, floor_at_promotion
            ),
        )
        return _clone_result(cached)
    return _task_postponement_intervals(
        taskset, base, patterns, horizon_ticks, floor_at_promotion
    )


def _clone_result(result: PostponementResult) -> PostponementResult:
    """A mutation-safe copy of a cached result."""
    return PostponementResult(
        thetas=list(result.thetas),
        promotions=list(result.promotions),
        raw_thetas=list(result.raw_thetas),
        job_thetas={k: list(v) for k, v in result.job_thetas.items()},
        horizon=result.horizon,
    )


def _task_postponement_intervals(
    taskset: TaskSet,
    base: TimeBase,
    patterns: Optional[Sequence[Pattern]],
    horizon_ticks: Optional[int],
    floor_at_promotion: bool,
) -> PostponementResult:
    if patterns is None:
        patterns = [RPattern(t.mk) for t in taskset]
    promotions = promotion_times(taskset, base)

    thetas: List[int] = []
    raw_thetas: List[int] = []
    job_thetas: Dict[int, List[Tuple[int, int]]] = {}
    # Postponed (release, deadline, wcet) of every mandatory backup job of
    # already-processed (higher-priority) tasks, flat across tasks.
    hp_backup_jobs: List[Tuple[int, int, int]] = []
    max_window = 0

    for index, task in enumerate(taskset):
        period = base.to_ticks(task.period)
        deadline_rel = base.to_ticks(task.deadline)
        wcet = base.to_ticks(task.wcet)
        window = mk_hyperperiod_ticks(taskset, base, upto_priority=index)
        if horizon_ticks is not None:
            window = min(window, horizon_ticks)
        max_window = max(max_window, window)

        per_job: List[Tuple[int, int]] = []
        theta_min: Optional[int] = None
        for job_index in _mandatory_jobs_before(patterns[index], period, window):
            release = (job_index - 1) * period
            abs_deadline = release + deadline_rel
            theta_j = job_postponement_interval(
                release, abs_deadline, wcet, hp_backup_jobs
            )
            per_job.append((job_index, theta_j))
            if theta_min is None or theta_j < theta_min:
                theta_min = theta_j
        if theta_min is None:
            # No mandatory job in the window (cannot happen under R-pattern,
            # whose first job is always mandatory, but E-patterns with a
            # tiny window could): fall back to the promotion time.
            theta_min = promotions[index]
        raw_thetas.append(theta_min)
        theta = max(theta_min, promotions[index]) if floor_at_promotion else theta_min
        thetas.append(theta)
        job_thetas[index] = per_job

        # Publish this task's postponed backup jobs for lower priorities.
        # Enumerate over the *global* horizon so that lower-priority tasks
        # see all interfering jobs inside their own windows.
        publish_limit = window if horizon_ticks is None else horizon_ticks
        for job_index in _mandatory_jobs_before(
            patterns[index], period, publish_limit
        ):
            release = (job_index - 1) * period
            hp_backup_jobs.append(
                (release + theta, release + deadline_rel, wcet)
            )

    return PostponementResult(
        thetas=thetas,
        promotions=promotions,
        raw_thetas=raw_thetas,
        job_thetas=job_thetas,
        horizon=max_window,
    )
