"""Schedulability tests for the mandatory workload under static patterns.

Theorem 1 of the paper reduces the (m,k) guarantee of the selective scheme
to "the task set is schedulable under R-pattern", i.e. the mandatory jobs
of every task -- released synchronously under the static pattern -- all
meet their deadlines under preemptive FP on one processor.

Two tests are provided:

* :func:`rta_mandatory_schedulable` -- fast fixed-point test using the
  pattern-aware response time of the *first* job of each task.  Under the
  deeply-red pattern the synchronous release is the critical instant for
  the mandatory subsequence, so this is the standard sufficient test.

* :func:`simulate_mandatory_fp` / :func:`is_rpattern_schedulable` -- an
  exact event-driven simulation of the mandatory-only schedule over a
  horizon, also reused to validate backup schedules under postponed
  releases (every release can be shifted by a per-task offset).

Deciding *whether* any mandatory job misses does not require building the
full completion list: :func:`mandatory_miss_exists` walks the identical
FP schedule with per-task FIFO queues and closed-form deeply-red release
arithmetic (no heap, no per-job pattern calls) and returns at the first
provable miss.  On the admission path -- where most candidates are
rejected quickly -- this is an order of magnitude cheaper than
:func:`simulate_mandatory_schedule` while returning the exact same
verdict (differential-tested in ``tests/property/test_prop_fastgen.py``).
"""

from __future__ import annotations

import heapq
from typing import List, Optional, Sequence, Tuple

from ..errors import AnalysisError
from ..model.patterns import Pattern, RPattern
from ..model.taskset import TaskSet
from ..timebase import TimeBase
from .hyperperiod import analysis_horizon
from .rta import response_time_mandatory


def rta_mandatory_schedulable(
    taskset: TaskSet,
    timebase: Optional[TimeBase] = None,
    patterns: Optional[Sequence[Pattern]] = None,
) -> bool:
    """Sufficient schedulability test via pattern-aware RTA."""
    base = timebase or taskset.timebase()
    try:
        for index in range(len(taskset)):
            response_time_mandatory(taskset, index, base, patterns)
    except AnalysisError:
        return False
    return True


def simulate_mandatory_schedule(
    taskset: TaskSet,
    timebase: Optional[TimeBase] = None,
    patterns: Optional[Sequence[Pattern]] = None,
    horizon_ticks: Optional[int] = None,
    release_offsets: Optional[Sequence[int]] = None,
) -> List[Tuple[int, int, int, int]]:
    """Exact FP simulation of the mandatory jobs on one processor.

    Args:
        taskset: task set (priority = index).
        timebase: tick grid.
        patterns: static partitioning patterns (default R-patterns).
        horizon_ticks: releases strictly before this horizon are simulated
            (default: the capped analysis horizon).
        release_offsets: optional per-task tick offsets added to every
            release (used to validate postponed backup schedules); the
            deadline stays anchored at the *nominal* release.

    Returns:
        One ``(task_index, job_index, completion_tick, deadline_tick)``
        entry per simulated mandatory job.
    """
    base = timebase or taskset.timebase()
    if patterns is None:
        patterns = [RPattern(t.mk) for t in taskset]
    horizon = (
        analysis_horizon(taskset, base)
        if horizon_ticks is None
        else horizon_ticks
    )
    if release_offsets is None:
        release_offsets = [0] * len(taskset)
    if len(release_offsets) != len(taskset):
        raise AnalysisError(
            "release_offsets must have one entry per task, got "
            f"{len(release_offsets)} for {len(taskset)} tasks"
        )

    # (enqueue_tick, task_index, job_index, deadline_tick, wcet_ticks)
    jobs: List[Tuple[int, int, int, int, int]] = []
    for index, task in enumerate(taskset):
        period = base.to_ticks(task.period)
        deadline_rel = base.to_ticks(task.deadline)
        wcet = base.to_ticks(task.wcet)
        offset = release_offsets[index]
        job_index = 1
        while (job_index - 1) * period < horizon:
            if patterns[index].is_mandatory(job_index):
                release = (job_index - 1) * period
                jobs.append(
                    (release + offset, index, job_index, release + deadline_rel, wcet)
                )
            job_index += 1
    jobs.sort()

    completions: List[Tuple[int, int, int, int]] = []
    ready: List[Tuple[int, int, int, int, List[int]]] = []  # heap
    now = 0
    position = 0
    sequence = 0
    total = len(jobs)
    while position < total or ready:
        if not ready:
            now = max(now, jobs[position][0])
        while position < total and jobs[position][0] <= now:
            enq, index, job_index, deadline, wcet = jobs[position]
            heapq.heappush(
                ready, (index, sequence, job_index, deadline, [wcet])
            )
            sequence += 1
            position += 1
        if not ready:
            continue
        index, _, job_index, deadline, remaining = ready[0]
        next_release = jobs[position][0] if position < total else None
        finish = now + remaining[0]
        if next_release is not None and next_release < finish:
            remaining[0] -= next_release - now
            now = next_release
        else:
            heapq.heappop(ready)
            now = finish
            completions.append((index, job_index, finish, deadline))
    return completions


def simulate_mandatory_fp(
    taskset: TaskSet,
    timebase: Optional[TimeBase] = None,
    patterns: Optional[Sequence[Pattern]] = None,
    horizon_ticks: Optional[int] = None,
    release_offsets: Optional[Sequence[int]] = None,
) -> Tuple[bool, List[Tuple[int, int, int]]]:
    """Deadline check over :func:`simulate_mandatory_schedule`.

    Returns ``(ok, misses)`` where ``misses`` lists
    ``(task_index, job_index, completion_tick)`` for every mandatory job
    that finished after its deadline (empty when ``ok``).
    """
    completions = simulate_mandatory_schedule(
        taskset, timebase, patterns, horizon_ticks, release_offsets
    )
    misses = [
        (index, job_index, finish)
        for index, job_index, finish, deadline in completions
        if finish > deadline
    ]
    return (not misses, misses)


def _next_mandatory_index(job_index: int, m: int, k: int) -> int:
    """Smallest deeply-red mandatory job index strictly after ``job_index``.

    The R-pattern marks job j mandatory iff ``1 <= (j mod k) <= m`` (hard
    tasks, m == k, mark everything; the formula below covers them because
    ``j mod k < k == m`` always holds).
    """
    window, rest = divmod(job_index, k)
    if rest < m:
        return job_index + 1
    return (window + 1) * k + 1


def mandatory_miss_exists(
    taskset: TaskSet,
    timebase: Optional[TimeBase] = None,
    patterns: Optional[Sequence[Pattern]] = None,
    horizon_ticks: Optional[int] = None,
) -> bool:
    """Whether any mandatory job misses its deadline -- early-exit exact.

    Walks the same preemptive-FP schedule as
    :func:`simulate_mandatory_schedule` (priority = task index, FIFO
    within a task, releases strictly before the horizon) but keeps one
    FIFO queue per task and generates mandatory releases lazily from the
    closed-form deeply-red index arithmetic, so a doomed candidate is
    rejected after a handful of integer events instead of a full-horizon
    heap simulation.  Returns ``True`` exactly when
    :func:`simulate_mandatory_fp` would report at least one miss: a job
    is declared missed either at dispatch (``now + remaining`` already
    past its deadline -- its completion can only be later) or while it
    starves behind higher-priority work past its deadline.
    """
    base = timebase or taskset.timebase()
    if patterns is None:
        patterns = [RPattern(t.mk) for t in taskset]
    horizon = (
        analysis_horizon(taskset, base)
        if horizon_ticks is None
        else horizon_ticks
    )
    n = len(taskset)
    periods = [base.to_ticks(t.period) for t in taskset]
    deadlines = [base.to_ticks(t.deadline) for t in taskset]
    wcets = [base.to_ticks(t.wcet) for t in taskset]
    closed_form: List[Optional[Tuple[int, int]]] = []
    for pattern in patterns:
        if isinstance(pattern, RPattern):
            closed_form.append((pattern.mk.m, pattern.mk.k))
        else:
            closed_form.append(None)

    def advance(index: int, job_index: int) -> Optional[int]:
        """Next mandatory job index after ``job_index`` inside the horizon."""
        mk = closed_form[index]
        if mk is not None:
            nxt = _next_mandatory_index(job_index, *mk)
        else:
            nxt = job_index + 1
            while (nxt - 1) * periods[index] < horizon and not patterns[
                index
            ].is_mandatory(nxt):
                nxt += 1
        if (nxt - 1) * periods[index] < horizon:
            return nxt
        return None

    next_job: List[Optional[int]] = [advance(i, 0) for i in range(n)]
    queues: List[List[int]] = [[] for _ in range(n)]  # absolute deadlines
    heads = [0] * n
    head_remaining = [0] * n
    now = 0
    while True:
        for i in range(n):
            j = next_job[i]
            while j is not None and (j - 1) * periods[i] <= now:
                release = (j - 1) * periods[i]
                if heads[i] == len(queues[i]):
                    head_remaining[i] = wcets[i]
                queues[i].append(release + deadlines[i])
                j = advance(i, j)
            next_job[i] = j
        running = -1
        for i in range(n):
            if heads[i] < len(queues[i]):
                if queues[i][heads[i]] < now:
                    # Still queued past its deadline: it cannot finish on
                    # time no matter what the schedule does next.
                    return True
                if running < 0:
                    running = i
        next_release: Optional[int] = None
        for i in range(n):
            j = next_job[i]
            if j is not None:
                release = (j - 1) * periods[i]
                if next_release is None or release < next_release:
                    next_release = release
        if running < 0:
            if next_release is None:
                return False
            now = next_release
            continue
        deadline = queues[running][heads[running]]
        remaining = head_remaining[running]
        if now + remaining > deadline:
            return True
        finish = now + remaining
        if next_release is not None and next_release < finish:
            head_remaining[running] = finish - next_release
            now = next_release
        else:
            heads[running] += 1
            head_remaining[running] = wcets[running]
            now = finish


def is_rpattern_schedulable(
    taskset: TaskSet,
    timebase: Optional[TimeBase] = None,
    horizon_ticks: Optional[int] = None,
    exact: bool = True,
) -> bool:
    """The paper's admission condition: schedulable under R-pattern.

    With ``exact=True`` (default) this runs the event-driven simulation
    over the horizon; otherwise only the fast RTA-based sufficient test.
    """
    base = timebase or taskset.timebase()
    patterns = [RPattern(t.mk) for t in taskset]
    if rta_mandatory_schedulable(taskset, base, patterns):
        return True
    if not exact:
        return False
    return not mandatory_miss_exists(
        taskset, base, patterns, horizon_ticks=horizon_ticks
    )
