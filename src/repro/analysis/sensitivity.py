"""Sensitivity analysis: critical scaling factors and slack margins.

Classic questions for a deployed task set:

* **How much heavier can the workload get?**
  :func:`critical_scaling_factor` binary-searches the largest uniform
  WCET multiplier under which the mandatory workload stays schedulable
  (under R-pattern, the paper's admission condition).
* **How much slack does each task have?**
  :func:`per_task_slack` reports D_i − R_i^mand per task -- the budget
  the promotion/postponement machinery spends.

Both are exact up to the chosen precision: the schedulability oracle is
the event-driven mandatory-schedule simulation, not a sufficient test.
"""

from __future__ import annotations

from fractions import Fraction
from typing import List, Optional

from ..errors import AnalysisError
from ..model.task import Task
from ..model.taskset import TaskSet
from ..timebase import TimeBase
from .hyperperiod import analysis_horizon
from .promotion import promotion_times
from .schedulability import is_rpattern_schedulable


def scale_wcets(taskset: TaskSet, factor: Fraction) -> TaskSet:
    """A copy of the task set with every WCET multiplied by ``factor``.

    Raises:
        AnalysisError: if scaling pushes any C above its D.
    """
    if factor <= 0:
        raise AnalysisError(f"scale factor must be positive, got {factor}")
    tasks: List[Task] = []
    for task in taskset:
        wcet = task.wcet * factor
        if wcet > task.deadline:
            raise AnalysisError(
                f"scaling by {factor} pushes {task.name}'s WCET past its "
                f"deadline"
            )
        tasks.append(
            Task(task.period, task.deadline, wcet, task.mk, name=task.name)
        )
    return TaskSet(tasks)


def critical_scaling_factor(
    taskset: TaskSet,
    precision: Fraction = Fraction(1, 128),
    horizon_cap_units: int = 2000,
) -> Fraction:
    """Largest WCET multiplier keeping the set R-pattern schedulable.

    Binary search over [lo, hi] where hi is capped by min(D_i / C_i)
    (beyond that some WCET exceeds its deadline).  The returned factor is
    schedulable; factor + precision is not (or hits the structural cap).

    Returns:
        A `Fraction` >= 0; values < 1 mean the set is *not* schedulable
        as given.
    """
    if precision <= 0:
        raise AnalysisError("precision must be positive")
    structural_cap = min(
        Fraction(task.deadline) / Fraction(task.wcet) for task in taskset
    )

    def schedulable(factor: Fraction) -> bool:
        if factor > structural_cap:
            return False
        scaled = scale_wcets(taskset, factor)
        base = scaled.timebase()
        horizon = analysis_horizon(scaled, base, horizon_cap_units)
        return is_rpattern_schedulable(scaled, base, horizon_ticks=horizon)

    lo = Fraction(0)
    hi = structural_cap
    if schedulable(hi):
        return hi
    # Invariant: lo schedulable (0 trivially is not runnable -- treat the
    # smallest representable load as schedulable), hi not schedulable.
    lo = precision
    if not schedulable(lo):
        return Fraction(0)
    while hi - lo > precision:
        mid = (lo + hi) / 2
        if schedulable(mid):
            lo = mid
        else:
            hi = mid
    return lo


def per_task_slack(
    taskset: TaskSet, timebase: Optional[TimeBase] = None
) -> List[Fraction]:
    """D_i − R_i^mand per task, in model time units (the promotion budget)."""
    base = timebase or taskset.timebase()
    return [base.from_ticks(y) for y in promotion_times(taskset, base)]
