"""Closed-form per-task energy estimates for the standby-sparing schemes.

These analytical bounds predict, per (m,k)-window of a task, how much
active energy each scheme spends in the fault-free steady state.  They
drive the :class:`~repro.schedulers.hybrid.MKSSHybrid` mode decision and
are validated against simulation in the test suite.

* **MKSS_ST**: every mandatory job runs twice to completion ->
  ``2 * m * C`` per window.
* **MKSS_DP / mandatory jobs of the selective scheme**: the main runs to
  completion; the backup starts at the postponed release r + θ and is
  canceled when the main completes, at latest r + R (the worst-case
  mandatory response time) -> at most
  ``m * (C + min(C, max(0, R - θ)))`` per window
  (:func:`backup_overlap_bound`).  With θ >= Y = D - R the overlap bound
  also never exceeds C - (D - R) slack permitting.
* **MKSS_Selective (fault-free steady state)**: the FD = 1 rule executes
  single copies at the exact long-run rate m/(k-1)
  (:func:`~repro.schedulers.hybrid.selective_execution_rate`) ->
  ``k * m/(k-1) * C`` per window.
"""

from __future__ import annotations

from fractions import Fraction
from typing import Optional

from ..errors import AnalysisError
from ..model.task import Task
from ..model.taskset import TaskSet
from ..timebase import TimeBase
from .postponement import task_postponement_intervals
from .rta import response_time_mandatory


def backup_overlap_bound(
    taskset: TaskSet,
    index: int,
    timebase: Optional[TimeBase] = None,
    theta_ticks: Optional[int] = None,
) -> int:
    """Worst-case backup execution before cancellation, in ticks.

    ``min(C, max(0, R - θ))``: the backup becomes ready θ after release
    and the main completes at latest R after release; whatever the backup
    managed to execute in between is wasted overlap.  ``theta_ticks``
    defaults to the task's θ from the postponement analysis.
    """
    base = timebase or taskset.timebase()
    task = taskset[index]
    wcet = base.to_ticks(task.wcet)
    if theta_ticks is None:
        theta_ticks = task_postponement_intervals(taskset, base).thetas[index]
    try:
        response = response_time_mandatory(taskset, index, base)
    except AnalysisError:
        response = base.to_ticks(task.deadline)
    return min(wcet, max(0, response - theta_ticks))


def st_energy_bound(task: Task) -> Fraction:
    """MKSS_ST active energy per window, in C-units of the task's wcet."""
    return Fraction(2 * task.mk.m) * task.wcet


def dp_energy_bound(
    taskset: TaskSet,
    index: int,
    timebase: Optional[TimeBase] = None,
    theta_ticks: Optional[int] = None,
) -> Fraction:
    """Upper bound on DP-style active energy per (m,k)-window (time units)."""
    base = timebase or taskset.timebase()
    task = taskset[index]
    overlap = backup_overlap_bound(taskset, index, base, theta_ticks)
    return task.mk.m * (task.wcet + base.from_ticks(overlap))


def selective_energy_bound(task: Task) -> Fraction:
    """Fault-free selective-mode active energy per (m,k)-window.

    Exact in the steady state when every selected optional completes:
    the FD=1 rule executes m/(k-1) of the jobs, one copy each.
    """
    from ..schedulers.hybrid import selective_execution_rate

    rate = selective_execution_rate(task.mk)
    return rate * task.mk.k * task.wcet
