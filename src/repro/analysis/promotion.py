"""Promotion times for the dual-priority baseline (Equation 2).

Haque et al. run backup tasks on the spare processor under the dual
priority scheme: a backup job of τ_i may be procrastinated by the
*promotion time*

    Y_i = D_i - R_i

because even if the backup only starts competing Y_i units after release
it still finishes within R_i <= D_i - Y_i of the promoted instant.  The
paper models this as a revised release time r + Y_i, which is also how we
implement it.

In the standby-sparing (m,k) setting only *mandatory* jobs execute, so the
relevant worst-case response time is the pattern-aware one (interference
counts mandatory higher-priority jobs only); on the paper's Figure 1
example both notions coincide (Y_1 = Y_2 = 1).  When even the mandatory
response time exceeds the deadline (the admission test is exact simulation
and can accept sets the sufficient RTA rejects), the promotion time falls
back to 0 -- "no postponement", which is always safe.
"""

from __future__ import annotations

from typing import List, Optional, Sequence

from ..errors import AnalysisError
from ..model.patterns import Pattern
from ..model.taskset import TaskSet
from ..timebase import TimeBase
from .cache import analysis_cache
from .rta import response_time_mandatory


def promotion_time(
    taskset: TaskSet,
    index: int,
    timebase: Optional[TimeBase] = None,
    patterns: Optional[Sequence[Pattern]] = None,
) -> int:
    """Promotion time Y_i = D_i - R_i in ticks (0 when R_i > D_i)."""
    base = timebase or taskset.timebase()
    deadline = base.to_ticks(taskset[index].deadline)
    try:
        response = response_time_mandatory(taskset, index, base, patterns)
    except AnalysisError:
        return 0
    return max(0, deadline - response)


def promotion_times(
    taskset: TaskSet,
    timebase: Optional[TimeBase] = None,
    patterns: Optional[Sequence[Pattern]] = None,
) -> List[int]:
    """Promotion times for every task, highest priority first."""
    base = timebase or taskset.timebase()
    if patterns is None:
        key = ("promotion", taskset.fingerprint(), base.ticks_per_unit)
        cached = analysis_cache().get(
            key,
            lambda: [
                promotion_time(taskset, i, base) for i in range(len(taskset))
            ],
        )
        return list(cached)
    return [
        promotion_time(taskset, i, base, patterns) for i in range(len(taskset))
    ]
