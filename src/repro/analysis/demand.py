"""Request/demand bounds for mandatory jobs under static patterns.

These helpers answer "how many (mandatory) jobs of τ does a time window
contain?" in O(k) time using pattern periodicity; they feed the
pattern-aware response time analysis and the schedulability tests.
"""

from __future__ import annotations

from ..errors import AnalysisError
from ..model.patterns import Pattern


def released_job_count(period_ticks: int, interval_ticks: int) -> int:
    """Jobs of a synchronous task released in [0, t): ceil(t / P)."""
    if period_ticks <= 0:
        raise AnalysisError(f"period must be positive, got {period_ticks}")
    if interval_ticks <= 0:
        return 0
    return -(-interval_ticks // period_ticks)


def mandatory_job_count(pattern: Pattern, released: int) -> int:
    """Mandatory jobs among the first ``released`` jobs of a task."""
    if released <= 0:
        return 0
    return pattern.mandatory_count_in(1, released)  # type: ignore[attr-defined]


def mandatory_demand(
    pattern: Pattern, period_ticks: int, wcet_ticks: int, interval_ticks: int
) -> int:
    """Execution demand (ticks) of mandatory jobs released in [0, t).

    This is the request-bound function of the mandatory subsequence for a
    synchronously released task under a static pattern.
    """
    released = released_job_count(period_ticks, interval_ticks)
    return mandatory_job_count(pattern, released) * wcet_ticks
