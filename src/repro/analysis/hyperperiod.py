"""Hyperperiods and bounded analysis horizons.

Random task sets with periods drawn from [5, 50] ms and k up to 20 can have
(m,k)-hyperperiods ``LCM(k_i * P_i)`` in the billions of ticks, far beyond
what any simulation (the paper's included) actually runs.  All analyses and
simulations in this package therefore run over an *analysis horizon*::

    H = min(LCM(k_i * P_i), cap)

The postponement intervals (Equation 5) are computed over the same horizon
as the simulation that uses them, so every guarantee we rely on is exact
for everything we simulate (see DESIGN.md, "Substitutions").
"""

from __future__ import annotations

import math
from typing import Iterable, Optional

from ..errors import AnalysisError
from ..model.taskset import TaskSet
from ..timebase import TimeBase

#: Default horizon cap, in ticks, used when the caller does not override it.
DEFAULT_HORIZON_CAP_UNITS = 5000


def lcm_ticks(values: Iterable[int]) -> int:
    """LCM of positive integers; raises on empty or non-positive input."""
    result = 1
    seen = False
    for value in values:
        if value <= 0:
            raise AnalysisError(f"lcm needs positive integers, got {value}")
        result = result * value // math.gcd(result, value)
        seen = True
    if not seen:
        raise AnalysisError("lcm of an empty sequence is undefined")
    return result


def mk_hyperperiod_ticks(
    taskset: TaskSet,
    timebase: TimeBase,
    upto_priority: Optional[int] = None,
) -> int:
    """LCM of k_i * P_i in ticks, optionally over tasks with index <= bound."""
    tasks = (
        taskset.tasks
        if upto_priority is None
        else taskset.tasks[: upto_priority + 1]
    )
    return lcm_ticks(
        task.mk.k * timebase.to_ticks(task.period) for task in tasks
    )


def period_hyperperiod_ticks(taskset: TaskSet, timebase: TimeBase) -> int:
    """LCM of the task *periods* in ticks -- the schedule's repeat length.

    Strictly smaller than (a divisor of) the (m,k)-hyperperiod: the
    release pattern repeats every period-LCM, while the mandatory/optional
    classification phase takes up to ``k_i`` more cycles to realign.  The
    simulator's cycle-folding detector snapshots at these boundaries and
    carries the classification phase in the snapshot instead.
    """
    return lcm_ticks(timebase.to_ticks(task.period) for task in taskset.tasks)


def analysis_horizon(
    taskset: TaskSet,
    timebase: TimeBase,
    cap_units: Optional[int] = DEFAULT_HORIZON_CAP_UNITS,
) -> int:
    """The bounded horizon H = min(mk-hyperperiod, cap) in ticks.

    Args:
        taskset: the task set under analysis.
        timebase: tick grid (must represent all task parameters exactly).
        cap_units: cap expressed in model time units (e.g. ms); ``None``
            means "no cap" and returns the full (m,k)-hyperperiod.
    """
    full = mk_hyperperiod_ticks(taskset, timebase)
    if cap_units is None:
        return full
    cap_ticks = cap_units * timebase.ticks_per_unit
    if cap_ticks <= 0:
        raise AnalysisError(f"horizon cap must be positive, got {cap_units}")
    return min(full, cap_ticks)
