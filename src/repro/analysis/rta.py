"""Exact worst-case response time analysis for fixed-priority tasks.

Two flavours are provided:

* :func:`response_time` -- the classic Joseph & Pandya fixed point

      R_i = C_i + sum_{k < i} ceil(R_i / P_k) * C_k

  treating every job of every higher-priority task as interference.  The
  paper's promotion times Y_i = D_i - R_i (Equation 2) are built on this.

* :func:`response_time_mandatory` -- the same fixed point but counting only
  *mandatory* jobs of higher-priority tasks under a static pattern, i.e.
  the interference term becomes (number of mandatory jobs of τ_k released
  in [0, t)) * C_k.  Under the deeply-red R-pattern the synchronous release
  is the critical instant for the mandatory subsequence (all windows start
  "full"), which is the basis of the paper's Theorem 1.

All computation is in integer ticks.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence

from ..errors import AnalysisError
from ..model.patterns import Pattern, RPattern
from ..model.taskset import TaskSet
from ..timebase import TimeBase
from .cache import analysis_cache
from .demand import mandatory_job_count


def _ceil_div(a: int, b: int) -> int:
    return -(-a // b)


def response_time(
    taskset: TaskSet,
    index: int,
    timebase: Optional[TimeBase] = None,
) -> int:
    """Worst-case response time (ticks) of the task at priority ``index``.

    Raises:
        AnalysisError: if the fixed point exceeds the task's deadline (the
            task is unschedulable under plain FP with all jobs mandatory).
    """
    base = timebase or taskset.timebase()
    task = taskset[index]
    wcet = base.to_ticks(task.wcet)
    deadline = base.to_ticks(task.deadline)
    hp = [
        (base.to_ticks(t.period), base.to_ticks(t.wcet))
        for t in taskset.higher_priority(index)
    ]
    current = wcet
    while True:
        nxt = wcet + sum(_ceil_div(current, p) * c for p, c in hp)
        if nxt == current:
            return current
        if nxt > deadline:
            raise AnalysisError(
                f"response time of {task.name or index} exceeds its deadline "
                f"({base.from_ticks(nxt)} > {task.deadline})"
            )
        current = nxt


def response_times(
    taskset: TaskSet, timebase: Optional[TimeBase] = None
) -> List[int]:
    """Response times (ticks) for every task, highest priority first.

    Memoized in the shared :mod:`repro.analysis.cache` (a failing RTA
    raises before anything is stored, so errors are never cached).
    """
    base = timebase or taskset.timebase()
    key = ("rta", taskset.fingerprint(), base.ticks_per_unit)
    cached = analysis_cache().get(
        key,
        lambda: [response_time(taskset, i, base) for i in range(len(taskset))],
    )
    return list(cached)


def response_time_mandatory(
    taskset: TaskSet,
    index: int,
    timebase: Optional[TimeBase] = None,
    patterns: Optional[Sequence[Pattern]] = None,
) -> int:
    """Response time counting only mandatory higher-priority interference.

    Args:
        taskset: the task set.
        index: priority index of the task under analysis.
        timebase: tick grid; derived from the task set when omitted.
        patterns: one static pattern per task; defaults to R-patterns.

    Returns:
        The least fixed point of
        ``t = C_i + sum_{k<i} mandatory_k([0, t)) * C_k`` in ticks.

    Raises:
        AnalysisError: if the fixed point exceeds the deadline.
    """
    base = timebase or taskset.timebase()
    if patterns is None:
        patterns = [RPattern(t.mk) for t in taskset]
    task = taskset[index]
    wcet = base.to_ticks(task.wcet)
    deadline = base.to_ticks(task.deadline)
    hp: List[tuple] = [
        (base.to_ticks(t.period), base.to_ticks(t.wcet), patterns[k])
        for k, t in enumerate(taskset.higher_priority(index))
    ]
    current = wcet
    while True:
        nxt = wcet
        for period, cost, pattern in hp:
            released = _ceil_div(current, period)
            nxt += mandatory_job_count(pattern, released) * cost
        if nxt == current:
            return current
        if nxt > deadline:
            raise AnalysisError(
                f"mandatory response time of {task.name or index} exceeds "
                f"its deadline ({base.from_ticks(nxt)} > {task.deadline})"
            )
        current = nxt


def response_times_mandatory(
    taskset: TaskSet,
    timebase: Optional[TimeBase] = None,
    patterns: Optional[Sequence[Pattern]] = None,
) -> List[int]:
    """Mandatory-only response times for every task.

    Memoized when ``patterns`` is None (default R-patterns); explicit
    pattern objects bypass the cache.
    """
    base = timebase or taskset.timebase()
    if patterns is None:
        key = ("rta-mandatory", taskset.fingerprint(), base.ticks_per_unit)
        cached = analysis_cache().get(
            key,
            lambda: [
                response_time_mandatory(taskset, i, base)
                for i in range(len(taskset))
            ],
        )
        return list(cached)
    return [
        response_time_mandatory(taskset, i, base, patterns)
        for i in range(len(taskset))
    ]


def response_time_map(
    taskset: TaskSet, timebase: Optional[TimeBase] = None
) -> Dict[str, int]:
    """Response times keyed by task name, for reporting."""
    base = timebase or taskset.timebase()
    return {
        taskset[i].name: response_time(taskset, i, base)
        for i in range(len(taskset))
    }
