"""repro: reliable and energy-aware fixed-priority (m,k)-deadlines
enforcement with standby-sparing.

A faithful, laptop-scale reproduction of Niu & Zhu, DATE 2020.  The
package implements the full system the paper describes -- periodic tasks
with (m,k)-firm constraints, a dual-processor standby-sparing simulator
with preemptive fixed-priority scheduling, the R-pattern/flexibility-
degree machinery, backup release postponement analysis, DPD-based energy
accounting, transient and permanent fault injection -- plus the three
evaluated schemes (MKSS_ST, MKSS_DP, MKSS_Selective), the motivational
greedy scheme, and the experiment harness regenerating every figure.

Quickstart::

    from repro import Task, TaskSet, run_scheme

    ts = TaskSet([Task(5, 4, 3, 2, 4), Task(10, 10, 3, 1, 2)])
    outcome = run_scheme(ts, "MKSS_Selective")
    print(outcome.total_energy, outcome.metrics.mk_violations)
"""

from .errors import (
    AnalysisError,
    ConfigurationError,
    ModelError,
    ReproError,
    SimulationError,
    TimeBaseError,
    UnknownSchemeError,
    UnschedulableError,
    WorkloadError,
)
from .timebase import TimeBase, as_fraction
from .model import (
    EPattern,
    Job,
    JobOutcome,
    JobRole,
    MKConstraint,
    MKHistory,
    Pattern,
    RPattern,
    Task,
    TaskSet,
    flexibility_degree,
)
from .analysis import (
    is_rpattern_schedulable,
    promotion_time,
    promotion_times,
    response_time,
    response_times,
    task_postponement_intervals,
)
from .sim import (
    PRIMARY,
    SPARE,
    ExecutionTrace,
    SchedulingPolicy,
    SimulationResult,
    StandbySparingEngine,
    render_gantt,
)
from .energy import DVSModel, EnergyReport, PowerModel, energy_of
from .faults import FaultScenario, PermanentFault, PoissonTransientFaults
from .schedulers import (
    DistanceBasedPriority,
    MKSSDualPriority,
    MKSSGreedy,
    MKSSHybrid,
    MKSSSelective,
    MKSSStatic,
    ReExecutionFP,
    SingleProcessorFP,
    run_policy,
    selective_execution_rate,
)
from .qos import MKMonitor, QoSMetrics, collect_metrics, verify_mk
from .workload import (
    GeneratorConfig,
    TaskSetGenerator,
    fig1_taskset,
    fig3_taskset,
    fig5_taskset,
    generate_binned_tasksets,
    uunifast,
)
from .harness import (
    fig6a,
    fig6b,
    fig6c,
    figure6_series,
    format_series_table,
    utilization_sweep,
)
from .harness.runner import run_scheme

__version__ = "1.0.0"

__all__ = [
    # errors
    "ReproError",
    "ModelError",
    "TimeBaseError",
    "AnalysisError",
    "UnschedulableError",
    "SimulationError",
    "ConfigurationError",
    "UnknownSchemeError",
    "WorkloadError",
    # time
    "TimeBase",
    "as_fraction",
    # model
    "MKConstraint",
    "Task",
    "TaskSet",
    "Job",
    "JobRole",
    "JobOutcome",
    "Pattern",
    "RPattern",
    "EPattern",
    "MKHistory",
    "flexibility_degree",
    # analysis
    "response_time",
    "response_times",
    "promotion_time",
    "promotion_times",
    "task_postponement_intervals",
    "is_rpattern_schedulable",
    # sim
    "PRIMARY",
    "SPARE",
    "StandbySparingEngine",
    "SchedulingPolicy",
    "SimulationResult",
    "ExecutionTrace",
    "render_gantt",
    # energy
    "PowerModel",
    "EnergyReport",
    "energy_of",
    "DVSModel",
    # faults
    "FaultScenario",
    "PermanentFault",
    "PoissonTransientFaults",
    # schedulers
    "MKSSStatic",
    "MKSSDualPriority",
    "MKSSGreedy",
    "MKSSSelective",
    "MKSSHybrid",
    "selective_execution_rate",
    "SingleProcessorFP",
    "DistanceBasedPriority",
    "ReExecutionFP",
    "run_policy",
    # qos
    "MKMonitor",
    "QoSMetrics",
    "collect_metrics",
    "verify_mk",
    # workload
    "uunifast",
    "GeneratorConfig",
    "TaskSetGenerator",
    "generate_binned_tasksets",
    "fig1_taskset",
    "fig3_taskset",
    "fig5_taskset",
    # harness
    "run_scheme",
    "utilization_sweep",
    "fig6a",
    "fig6b",
    "fig6c",
    "figure6_series",
    "format_series_table",
]
