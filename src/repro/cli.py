"""Command-line interface: ``python -m repro <command>``.

Commands:

* ``analyze``  -- offline analysis of a task set (RTA, Y_i, θ_i,
  schedulability).
* ``simulate`` -- run one scheme on a task set and print the Gantt chart,
  energy, and QoS metrics.
* ``sweep``    -- a Figure 6 panel (choose the fault scenario).
* ``triage``   -- differential fidelity triage of the Figure 6 gap:
  one-knob-at-a-time protocol ablations per panel, a machine-readable
  gap-decomposition report, and outlier trace drill-down.
* ``validate`` -- run the conformance auditor on a task set: model-level
  schedule invariants, each scheme's declared invariant suite, DPD
  legality, and the cross-mode (trace vs stats vs folded) differential.
* ``examples`` -- list the paper's preset task sets.

Task sets are given inline as semicolon-separated five-tuples, e.g.::

    python -m repro simulate --scheme MKSS_Selective \
        --tasks "5,4,3,2,4; 10,10,3,1,2" --horizon 20
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional

from .analysis.hyperperiod import analysis_horizon
from .analysis.postponement import task_postponement_intervals
from .analysis.promotion import promotion_times
from .analysis.rta import response_times_mandatory
from .analysis.schedulability import is_rpattern_schedulable
from .energy.accounting import energy_of_result
from .energy.dvfs import DVFSConfig
from .energy.power import PowerModel
from .errors import ReproError
from .harness.figures import DEFAULT_BINS, fig6a, fig6b, fig6c
from .harness.protocol import ExperimentProtocol
from .harness.report import format_series_table, format_table
from .harness.runner import SCHEME_FACTORIES
from .model.history import INITIAL_HISTORY_MODES
from .model.task import Task
from .model.taskset import TaskSet
from .qos.metrics import collect_metrics
from .schedulers.base import run_policy
from .sim.gantt import render_gantt
from .workload.presets import motivation_tasksets
from .workload.release import RELEASE_PRESETS, ReleaseModel


def parse_taskset(spec: str) -> TaskSet:
    """Parse "P,D,C,m,k; P,D,C,m,k; ..." into a TaskSet."""
    tasks: List[Task] = []
    for chunk in spec.split(";"):
        chunk = chunk.strip()
        if not chunk:
            continue
        fields = [f.strip() for f in chunk.split(",")]
        if len(fields) != 5:
            raise ReproError(
                f"each task needs 5 fields (P,D,C,m,k), got {chunk!r}"
            )
        period, deadline, wcet = fields[0], fields[1], fields[2]
        m, k = int(fields[3]), int(fields[4])
        tasks.append(Task(period, deadline, wcet, m, k))
    if not tasks:
        raise ReproError("no tasks given")
    return TaskSet(tasks)


def _add_release_args(parser) -> None:
    """Register the arrival-process / boundary-condition knobs."""
    parser.add_argument(
        "--release-model",
        choices=sorted(RELEASE_PRESETS),
        default="periodic",
        help="job arrival process: 'periodic' is the paper's model; "
        "'light'/'heavy' add sporadic-legal jitter (up to 0.1/0.5 of the "
        "period), 'bursty' releases back-to-back bursts separated by "
        "random gaps (all keep inter-arrivals >= the period)",
    )
    parser.add_argument(
        "--release-seed",
        type=int,
        default=0,
        help="seed of the release-model jitter/gap draws (ignored for "
        "periodic releases)",
    )
    parser.add_argument(
        "--initial-history",
        choices=INITIAL_HISTORY_MODES,
        default="met",
        help="(m,k)-history boundary condition: 'met' (the paper's "
        "all-met assumption), 'miss' (all windows start violated), or "
        "'rpattern' (windows pre-seeded with the R-pattern)",
    )


def _release_model_from_args(args) -> Optional[ReleaseModel]:
    """The ReleaseModel the flags describe (None = periodic default)."""
    if args.release_model == "periodic":
        return None
    return ReleaseModel.preset(args.release_model, seed=args.release_seed)


def _add_dvfs_args(parser) -> None:
    """Register the deadline-safe frequency-scaling knobs."""
    parser.add_argument(
        "--dvfs",
        action="store_true",
        help="slow each scheme's main copies by the largest uniform "
        "factor that passes the R-pattern critical-scaling check, "
        "clamped at the power model's critical speed; backups and "
        "post-fault work run at full speed (max-performance fallback)",
    )
    parser.add_argument(
        "--dvs-alpha",
        type=float,
        default=DVFSConfig().alpha,
        help="dynamic power exponent of the DVS model (power = "
        "s**alpha at speed s; ignored without --dvfs)",
    )
    parser.add_argument(
        "--dvs-static",
        type=float,
        default=DVFSConfig().static_power,
        help="static/leakage power of the DVS model, paid whenever the "
        "processor is on (ignored without --dvfs)",
    )


def _dvfs_from_args(args) -> Optional[DVFSConfig]:
    """The DVFSConfig the flags describe (None = no frequency scaling)."""
    if not args.dvfs:
        return None
    return DVFSConfig(alpha=args.dvs_alpha, static_power=args.dvs_static)


def _resolve_taskset(args) -> TaskSet:
    if args.preset:
        presets = motivation_tasksets()
        if args.preset not in presets:
            raise ReproError(
                f"unknown preset {args.preset!r}; choose from {sorted(presets)}"
            )
        return presets[args.preset]
    if getattr(args, "tasks_file", None):
        from .workload.serialization import load_taskset

        return load_taskset(args.tasks_file)
    if not args.tasks:
        raise ReproError("pass --tasks, --tasks-file, or --preset")
    return parse_taskset(args.tasks)


def cmd_analyze(args) -> int:
    taskset = _resolve_taskset(args)
    base = taskset.timebase()
    print(f"task set: {taskset}")
    print(f"utilization: {float(taskset.utilization):.3f}")
    print(f"(m,k)-utilization: {float(taskset.mk_utilization):.3f}")
    print(f"R-pattern schedulable: {is_rpattern_schedulable(taskset)}")
    rows = []
    thetas = task_postponement_intervals(taskset, base)
    responses = response_times_mandatory(taskset, base)
    promotions = promotion_times(taskset, base)
    for index, task in enumerate(taskset):
        rows.append(
            [
                task.name,
                "(" + ",".join(str(v) for v in task.paper_tuple()) + ")",
                str(base.from_ticks(responses[index])),
                str(base.from_ticks(promotions[index])),
                str(base.from_ticks(thetas.thetas[index])),
            ]
        )
    print(
        format_table(
            ["task", "(P,D,C,m,k)", "R_i (mand.)", "Y_i", "theta_i"], rows
        )
    )
    return 0


def cmd_simulate(args) -> int:
    taskset = _resolve_taskset(args)
    base = taskset.timebase()
    if args.scheme not in SCHEME_FACTORIES:
        raise ReproError(
            f"unknown scheme {args.scheme!r}; known: {sorted(SCHEME_FACTORIES)}"
        )
    collect_trace = args.collect_trace and not args.fold
    if not collect_trace:
        for flag, name in ((args.timeline, "--timeline"), (args.export, "--export")):
            if flag:
                raise ReproError(
                    f"{name} needs an execution trace; drop --no-trace/--fold"
                )
    if args.horizon:
        horizon = args.horizon * base.ticks_per_unit
    else:
        horizon = analysis_horizon(taskset, base, 2000)
    dvfs = _dvfs_from_args(args)
    speed_plan = None
    if dvfs is not None and dvfs.applies_to(args.scheme):
        from .energy.dvfs import resolve_dvfs, speed_plan_for

        dvfs = resolve_dvfs(dvfs)
        if dvfs is not None:
            speed_plan = speed_plan_for(
                taskset, base, dvfs, horizon_cap_units=args.horizon or 2000
            )
    result = run_policy(
        taskset,
        SCHEME_FACTORIES[args.scheme](),
        horizon,
        base,
        collect_trace=collect_trace,
        fold=args.fold,
        release_model=_release_model_from_args(args),
        initial_history=args.initial_history,
        speed_plan=speed_plan,
    )
    if args.gantt and collect_trace:
        cell = 1 if base.ticks_per_unit == 1 else f"1/{base.ticks_per_unit}"
        print(render_gantt(result.trace, base, horizon, cell_units=cell))
    metrics = collect_metrics(result)
    energy = energy_of_result(result, PowerModel.paper_default())
    active = energy_of_result(result, PowerModel.active_only())
    print(f"scheme: {args.scheme}  horizon: {base.from_ticks(horizon)}")
    if args.fold:
        cycle = (
            base.from_ticks(result.fold_cycle_ticks)
            if result.fold_cycle_ticks
            else "-"
        )
        print(f"cycles folded: {result.cycles_folded} (cycle: {cycle})")
    print(f"active energy: {float(active.active_units):g}")
    print(f"total energy (paper model): {energy.total_energy:.3f}")
    for key, value in metrics.as_dict().items():
        print(f"  {key}: {value}")
    if args.timeline:
        from .qos.timeline import render_timelines

        print()
        print(render_timelines(result, args.initial_history))
    if args.export:
        from .sim.export import write_result

        write_result(result, args.export)
        print(f"trace written to {args.export}")
    return 0 if metrics.mk_violations == 0 else 1


def parse_bins(spec: str):
    """Parse "0.2:0.3,0.5:0.6" into [(0.2, 0.3), (0.5, 0.6)]."""
    bins = []
    for chunk in spec.split(","):
        chunk = chunk.strip()
        if not chunk:
            continue
        try:
            lo_text, hi_text = chunk.split(":")
            lo, hi = float(lo_text), float(hi_text)
        except ValueError as exc:
            raise ReproError(f"bad bin {chunk!r}, expected lo:hi") from exc
        if not lo < hi:
            raise ReproError(f"bad bin {chunk!r}: need lo < hi")
        bins.append((lo, hi))
    if not bins:
        raise ReproError("no bins given")
    return bins


def cmd_sweep(args) -> int:
    from .harness.events import EventLog
    from .harness.report import format_event_summary

    panel = {"none": fig6a, "permanent": fig6b, "transient": fig6c}[args.faults]
    bins = parse_bins(args.bins) if args.bins else list(DEFAULT_BINS)
    collect_trace = args.collect_trace and not args.fold
    log = EventLog()
    backend = args.backend
    if backend == "batch":
        from .harness.events import BACKEND_FALLBACK
        from .sim.batch import numpy_available

        if not numpy_available():
            # Degrade, don't crash: the batch kernel is an accelerator,
            # not a requirement.  The event records what happened.
            log.emit(
                BACKEND_FALLBACK,
                requested="batch",
                used="pool",
                reason="numpy is not installed (pip install repro[batch])",
            )
            print(
                "warning: --backend batch needs numpy "
                "(pip install repro[batch]); falling back to pool",
                file=sys.stderr,
            )
            backend = "pool"
    sweep = panel(
        bins=bins,
        sets_per_bin=args.sets_per_bin,
        seed=args.seed,
        horizon_cap_units=args.horizon,
        workers=args.workers,
        backend=backend,
        journal_path=args.journal or None,
        resume=args.resume,
        force_new=args.force_new,
        job_timeout=args.job_timeout or None,
        events=log,
        collect_trace=collect_trace,
        fold=args.fold,
        validate=args.validate,
        generation_store=args.gen_cache or None,
        release_model=_release_model_from_args(args),
        initial_history=args.initial_history,
        dvfs=_dvfs_from_args(args),
    )
    print(format_series_table(sweep, f"sweep ({args.faults} faults)"))
    generation = next(
        (e.data for e in log.events if e.kind == "generation"), None
    )
    if generation is not None:
        line = (
            f"generation: {generation.get('source')} "
            f"({generation.get('sets')} sets in {generation.get('seconds')}s"
        )
        if "screened_out" in generation:
            line += (
                f", {generation.get('draws')} draws, "
                f"{generation['screened_out']} screened out, "
                f"{generation.get('admission_tests')} admission tests"
            )
        line += ")"
        if "cache_entries" in generation:
            line += (
                f"; cache: {generation['cache_hits']} hit(s), "
                f"{generation['cache_entries']} entr(ies), "
                f"{generation['cache_bytes']} bytes"
            )
        print(line)
    if args.validate:
        audited = len(log.of_kind("validate"))
        print(
            f"validation: {audited} audit(s), "
            f"{len(sweep.validation_issues)} issue(s)"
        )
        for item in sweep.validation_issues:
            print(
                f"  {item.job} {item.scheme} [{item.mode}] "
                f"{item.issue.kind}: {item.issue.detail}"
            )
    if args.fold:
        folded = [
            event.data["cycles_folded"]
            for event in log.events
            if event.kind == "job_finish" and "cycles_folded" in event.data
        ]
        print(
            f"cycles folded: {sum(folded)} across "
            f"{sum(1 for count in folded if count)}/{len(folded)} fresh jobs"
        )
    if args.chart:
        from .harness.ascii_chart import render_sweep_chart

        print()
        print(render_sweep_chart(sweep))
    if args.events:
        log.write_jsonl(args.events)
        print(f"events written to {args.events} ({len(log.events)} events)")
    if args.journal or args.events or args.workers > 1:
        print()
        print(format_event_summary(log))
    return 0 if not sweep.validation_issues else 1


def cmd_triage(args) -> int:
    import os

    from .harness.events import EventLog
    from .harness.protocol import documented_protocol
    from .harness.triage import (
        TriageOptions,
        check_report,
        format_triage_tables,
        run_triage,
    )

    protocol = documented_protocol()
    overrides = {}
    if args.sets_per_bin:
        overrides["sets_per_bin"] = args.sets_per_bin
    if args.horizon:
        overrides["horizon_cap_units"] = args.horizon
    if args.seed:
        overrides["seed"] = args.seed
    release_model = _release_model_from_args(args)
    if release_model is not None:
        overrides["release_model"] = release_model
    if args.initial_history != "met":
        overrides["initial_history"] = args.initial_history
    dvfs = _dvfs_from_args(args)
    if dvfs is not None:
        overrides["dvfs"] = dvfs
    if overrides:
        protocol = protocol.replace(**overrides)
    panels = tuple(
        panel.strip() for panel in args.panels.split(",") if panel.strip()
    )
    knobs = (
        tuple(knob.strip() for knob in args.knobs.split(",") if knob.strip())
        or None
        if args.knobs
        else None
    )
    options = TriageOptions(
        out_dir=args.out_dir,
        panels=panels,
        knobs=knobs,
        workers=args.workers,
        fold=not args.no_fold,
        validate=args.validate,
        resume=args.resume,
        outliers=args.outliers,
        job_timeout=args.job_timeout or None,
    )
    log = EventLog()
    report = run_triage(protocol, options, events=log)
    report_path = args.report or os.path.join(args.out_dir, "report.json")
    report.write(report_path)
    print(format_triage_tables(report))
    print(f"\nreport written to {report_path} (run {report.run_id})")
    if args.events:
        log.write_jsonl(args.events)
        print(f"events written to {args.events} ({len(log.events)} events)")
    if args.check:
        problems = check_report(report)
        for problem in problems:
            print(f"CHECK FAILED: {problem}", file=sys.stderr)
        if problems:
            return 1
        print(
            "checks passed: ordering holds, 0 violations in gated runs, "
            "modes agree everywhere"
        )
    return 0


def cmd_validate(args) -> int:
    from .faults.scenario import FaultScenario
    from .harness.validate import AUDIT_MODES, audit_scheme

    taskset = _resolve_taskset(args)
    if args.scheme:
        if args.scheme not in SCHEME_FACTORIES:
            raise ReproError(
                f"unknown scheme {args.scheme!r}; known: "
                f"{sorted(SCHEME_FACTORIES)}"
            )
        schemes = [args.scheme]
    else:
        schemes = sorted(SCHEME_FACTORIES)
    modes = tuple(
        mode.strip() for mode in args.modes.split(",") if mode.strip()
    )
    unknown = [mode for mode in modes if mode not in AUDIT_MODES]
    if unknown:
        raise ReproError(
            f"unknown mode(s) {unknown}; known: {list(AUDIT_MODES)}"
        )
    if args.faults == "permanent":
        scenario = FaultScenario.permanent_only(seed=args.seed)
    elif args.faults == "transient":
        scenario = FaultScenario.permanent_and_transient(seed=args.seed)
    else:
        scenario = None
    total = 0
    for scheme in schemes:
        report = audit_scheme(
            taskset,
            scheme,
            scenario=scenario,
            horizon_cap_units=args.horizon,
            modes=modes,
            release_model=_release_model_from_args(args),
            initial_history=args.initial_history,
            dvfs=_dvfs_from_args(args),
        )
        verdicts = "  ".join(
            f"{audit.mode}: {'ok' if audit.ok else f'{len(audit.issues)} issue(s)'}"
            for audit in report.modes
        )
        print(f"{scheme:24s} {verdicts}")
        for audit in report.modes:
            for issue in audit.issues:
                total += 1
                print(f"  [{audit.mode}] {issue.kind}: {issue.detail}")
    print(
        f"audited {len(schemes)} scheme(s) x {len(modes)} mode(s): "
        f"{total} issue(s)"
    )
    return 0 if total == 0 else 1


def cmd_serve(args) -> int:
    from .service import ServiceConfig, serve

    config = ServiceConfig(
        data_dir=args.data_dir,
        host=args.host,
        port=args.port,
        queue_capacity=args.queue_capacity,
        per_tenant=args.per_tenant,
        executors=args.executors,
        sweep_workers=args.sweep_workers,
        retry_after_s=args.retry_after,
        force_new=args.force_new,
        throttle_s=args.throttle_s,
    )
    return serve(config)


def cmd_examples(args) -> int:
    for name, taskset in motivation_tasksets().items():
        print(f"{name}: {taskset}")
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="(m,k)-firm standby-sparing scheduling (DATE 2020 repro)",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    analyze = sub.add_parser("analyze", help="offline analysis of a task set")
    analyze.add_argument("--tasks", help='"P,D,C,m,k; ..." inline task set')
    analyze.add_argument("--tasks-file", help="JSON task-set file")
    analyze.add_argument("--preset", help="fig1 | fig3 | fig5")
    analyze.set_defaults(func=cmd_analyze)

    simulate = sub.add_parser("simulate", help="simulate one scheme")
    simulate.add_argument("--tasks", help='"P,D,C,m,k; ..." inline task set')
    simulate.add_argument("--tasks-file", help="JSON task-set file")
    simulate.add_argument("--preset", help="fig1 | fig3 | fig5")
    simulate.add_argument(
        "--scheme", default="MKSS_Selective", help="scheme name"
    )
    simulate.add_argument(
        "--horizon", type=int, default=0, help="horizon in time units"
    )
    simulate.add_argument(
        "--no-gantt", dest="gantt", action="store_false", help="skip the chart"
    )
    simulate.add_argument(
        "--export", default="", help="write the trace to a .json/.csv file"
    )
    simulate.add_argument(
        "--timeline",
        action="store_true",
        help="print per-task (m,k) timelines",
    )
    simulate.add_argument(
        "--no-trace",
        dest="collect_trace",
        action="store_false",
        help="stats-only run: same energy and metrics, no trace "
        "(disables the chart, --timeline, and --export)",
    )
    simulate.add_argument(
        "--fold",
        action="store_true",
        help="fold repeated hyperperiod cycles analytically (implies "
        "--no-trace; exact for fault-free and permanent-fault runs)",
    )
    _add_release_args(simulate)
    _add_dvfs_args(simulate)
    simulate.set_defaults(func=cmd_simulate)

    # Quick sweeps default to the documented smoke scale; `triage`
    # defaults to the documented full scale.  Both come from the single
    # protocol object so the numbers cannot drift apart again.
    smoke = ExperimentProtocol.smoke()
    sweep = sub.add_parser("sweep", help="run a Figure 6 panel")
    sweep.add_argument(
        "--faults",
        choices=("none", "permanent", "transient"),
        default="none",
    )
    sweep.add_argument("--sets-per-bin", type=int, default=smoke.sets_per_bin)
    sweep.add_argument("--seed", type=int, default=smoke.seed)
    sweep.add_argument(
        "--horizon", type=int, default=smoke.horizon_cap_units
    )
    sweep.add_argument(
        "--bins", default="", help='utilization bins as "0.2:0.3,0.5:0.6"'
    )
    sweep.add_argument(
        "--chart", action="store_true", help="render an ASCII chart too"
    )
    sweep.add_argument(
        "--workers",
        type=int,
        default=1,
        help="worker processes (1 = sequential)",
    )
    sweep.add_argument(
        "--backend",
        choices=("pool", "batch", "serial"),
        default="pool",
        help="execution backend: 'pool' runs one scalar engine per job, "
        "'batch' advances batchable jobs in lockstep on the vectorized "
        "numpy kernel (scalar fallback per job; identical results), "
        "'serial' forces the inline scalar path; without numpy, "
        "--backend batch warns and falls back to pool",
    )
    sweep.add_argument(
        "--journal",
        default="",
        help="JSONL checkpoint journal; finished jobs are appended so an "
        "interrupted sweep can be resumed with --resume",
    )
    sweep.add_argument(
        "--resume",
        action="store_true",
        help="resume completed jobs from the --journal file",
    )
    sweep.add_argument(
        "--force-new",
        dest="force_new",
        action="store_true",
        help="with --resume, overwrite a journal that cannot be resumed "
        "(corrupt/truncated header, fingerprint from a different sweep) "
        "instead of refusing; a healthy journal still resumes",
    )
    sweep.add_argument(
        "--job-timeout",
        type=float,
        default=0.0,
        help="per-job wall-clock timeout in seconds for parallel runs "
        "(0 = no timeout); a job over budget is retried, then dropped",
    )
    sweep.add_argument(
        "--events",
        default="",
        help="write the run's structured events to this JSONL file",
    )
    sweep.add_argument(
        "--no-trace",
        dest="collect_trace",
        action="store_false",
        help="run every job stats-only (identical results, lower wall "
        "clock; sweeps never consume traces)",
    )
    sweep.add_argument(
        "--fold",
        action="store_true",
        help="enable the cycle-folding fast path in every job (implies "
        "--no-trace); per-job fold counts land on job_finish events",
    )
    sweep.add_argument(
        "--validate",
        type=int,
        default=0,
        metavar="N",
        help="run the conformance auditor on N sampled task sets (every "
        "scheme, trace + stats modes, + fold when folding); issues are "
        "printed, recorded as events, and make the command exit nonzero",
    )
    sweep.add_argument(
        "--gen-cache",
        dest="gen_cache",
        default="",
        metavar="DIR",
        help="persistent task-set generation cache: a digest-keyed store "
        "under DIR memoizes generated corpora, so repeat sweeps sharing a "
        "generation spec (bins, sets/bin, seed, generator config) load "
        "task sets instead of redrawing them; results are identical "
        "either way",
    )
    _add_release_args(sweep)
    _add_dvfs_args(sweep)
    sweep.set_defaults(func=cmd_sweep)

    triage = sub.add_parser(
        "triage",
        help="differential fidelity triage of the Figure 6 gap",
        description=(
            "Run one-knob-at-a-time ablations of the experiment protocol "
            "around the documented baseline (15 sets/bin, 1500 ms horizon) "
            "and emit a machine-readable gap-decomposition report per "
            "Figure 6 panel, with outlier task sets replayed through the "
            "conformance auditor and exported as traces."
        ),
    )
    triage.add_argument(
        "--panels",
        default="fig6a,fig6b,fig6c",
        help="comma-separated Figure 6 panels to triage",
    )
    triage.add_argument(
        "--knobs",
        default="",
        help="comma-separated knob subset (default: every knob; see "
        "repro.harness.triage.default_knobs)",
    )
    triage.add_argument(
        "--out-dir",
        default="triage-out",
        help="campaign directory: per-sweep journals land in journals/, "
        "outlier traces in traces/",
    )
    triage.add_argument(
        "--report",
        default="",
        help="gap-decomposition JSON path (default: <out-dir>/report.json)",
    )
    triage.add_argument(
        "--sets-per-bin",
        type=int,
        default=0,
        help="baseline sets per bin (0 = documented protocol / env)",
    )
    triage.add_argument(
        "--horizon",
        type=int,
        default=0,
        help="baseline horizon cap in ms (0 = documented protocol / env)",
    )
    triage.add_argument(
        "--seed", type=int, default=0, help="baseline seed (0 = documented)"
    )
    triage.add_argument(
        "--workers",
        type=int,
        default=1,
        help="worker processes per sweep (1 = sequential)",
    )
    triage.add_argument(
        "--resume",
        action="store_true",
        help="resume every ablation sweep from its journal in <out-dir>",
    )
    triage.add_argument(
        "--job-timeout",
        type=float,
        default=0.0,
        help="per-job wall-clock timeout in seconds for parallel sweeps",
    )
    triage.add_argument(
        "--validate",
        type=int,
        default=1,
        metavar="N",
        help="conformance-auditor samples per sweep (0 disables the "
        "trace/stats/fold agreement check)",
    )
    triage.add_argument(
        "--outliers",
        type=int,
        default=2,
        help="per panel, extreme task sets to replay and export traces for",
    )
    triage.add_argument(
        "--no-fold",
        action="store_true",
        help="disable the cycle-folding fast path (runs with full traces)",
    )
    triage.add_argument(
        "--events",
        default="",
        help="write the campaign's structured events to this JSONL file",
    )
    triage.add_argument(
        "--check",
        action="store_true",
        help="exit nonzero if the Selective-vs-DP ordering regresses or "
        "any run shows (m,k) violations / cross-mode divergence",
    )
    _add_release_args(triage)
    _add_dvfs_args(triage)
    triage.set_defaults(func=cmd_triage)

    validate = sub.add_parser(
        "validate",
        help="audit schedule/energy conformance of scheme runs",
    )
    validate.add_argument("--tasks", help='"P,D,C,m,k; ..." inline task set')
    validate.add_argument("--tasks-file", help="JSON task-set file")
    validate.add_argument("--preset", help="fig1 | fig3 | fig5")
    validate.add_argument(
        "--scheme", default="", help="scheme name (default: every scheme)"
    )
    validate.add_argument(
        "--horizon", type=int, default=2000, help="horizon cap in time units"
    )
    validate.add_argument(
        "--modes",
        default="trace,stats,fold",
        help="comma-separated audit modes (trace, stats, fold)",
    )
    validate.add_argument(
        "--faults",
        choices=("none", "permanent", "transient"),
        default="none",
        help="fault scenario to audit under (seeded, reproducible)",
    )
    validate.add_argument(
        "--seed", type=int, default=20200309, help="fault scenario seed"
    )
    _add_release_args(validate)
    _add_dvfs_args(validate)
    validate.set_defaults(func=cmd_validate)

    serve = sub.add_parser(
        "serve",
        help="run the sweep-as-a-service HTTP server",
        description=(
            "Long-running scheduling-analysis server: submit sweep specs "
            "over HTTP (POST /v1/sweeps), stream progress events (SSE / "
            "NDJSON), and fetch canonical results.  Results are cached by "
            "sweep fingerprint, jobs checkpoint into per-sweep journals, "
            "and a restarted server resumes interrupted sweeps with "
            "byte-identical final results."
        ),
    )
    serve.add_argument(
        "--data-dir",
        required=True,
        help="root directory for the service's durable state "
        "(jobs/, journals/, results/, events/)",
    )
    serve.add_argument("--host", default="127.0.0.1")
    serve.add_argument(
        "--port",
        type=int,
        default=8080,
        help="listen port (0 = pick an ephemeral port and print it)",
    )
    serve.add_argument(
        "--queue-capacity",
        type=int,
        default=16,
        help="max jobs queued or running across all tenants; beyond it "
        "submissions get 429 with Retry-After",
    )
    serve.add_argument(
        "--per-tenant",
        type=int,
        default=8,
        help="max jobs queued or running per X-Tenant value",
    )
    serve.add_argument(
        "--executors",
        type=int,
        default=1,
        help="concurrent sweeps (worker loops)",
    )
    serve.add_argument(
        "--sweep-workers",
        type=int,
        default=1,
        help="process workers inside each sweep",
    )
    serve.add_argument(
        "--retry-after",
        type=int,
        default=5,
        metavar="S",
        help="Retry-After seconds sent with 429 responses",
    )
    serve.add_argument(
        "--force-new",
        action="store_true",
        help="overwrite a job's journal when it cannot be resumed "
        "(corrupt/truncated header, foreign fingerprint) instead of "
        "failing the job; healthy journals still resume",
    )
    serve.add_argument(
        "--throttle-s",
        type=float,
        default=0.0,
        help="pause this long after each finished simulation (test/demo "
        "knob for observing mid-run state)",
    )
    serve.set_defaults(func=cmd_serve)

    examples = sub.add_parser("examples", help="list the paper's presets")
    examples.set_defaults(func=cmd_examples)
    return parser


def main(argv: Optional[List[str]] = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)
    try:
        return args.func(args)
    except ReproError as error:
        print(f"error: {error}", file=sys.stderr)
        return 2


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
