"""Exception hierarchy for the repro package.

Every error raised deliberately by this library derives from
:class:`ReproError`, so callers can catch library failures with a single
``except`` clause while letting genuine bugs (``TypeError`` etc.) surface.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the repro package."""


class ModelError(ReproError):
    """Invalid task, job, or (m,k)-constraint parameters."""


class TimeBaseError(ReproError):
    """A time value cannot be represented on the simulation tick grid."""


class AnalysisError(ReproError):
    """Offline analysis failed (e.g. response time exceeds the deadline)."""


class UnschedulableError(AnalysisError):
    """The task set is not schedulable under the requested test."""


class SimulationError(ReproError):
    """Internal inconsistency detected while simulating."""


class ConfigurationError(ReproError):
    """A scheduler or harness was configured with invalid options."""


class UnknownSchemeError(ConfigurationError, KeyError):
    """An unregistered scheme name was requested.

    Also derives from :class:`KeyError` because the registry lookup
    historically surfaced one; callers of either style keep working.
    """

    def __str__(self) -> str:  # KeyError would repr-quote the message
        return Exception.__str__(self)


class WorkloadError(ReproError):
    """Random workload generation could not satisfy its constraints."""
