"""Shared helpers for building and running scheduling policies."""

from __future__ import annotations

from typing import Optional

from ..faults.scenario import FaultScenario
from ..model.taskset import TaskSet
from ..sim.engine import (
    SchedulingPolicy,
    SimulationResult,
    StandbySparingEngine,
)
from ..timebase import TimeBase


def run_policy(
    taskset: TaskSet,
    policy: SchedulingPolicy,
    horizon_ticks: int,
    timebase: Optional[TimeBase] = None,
    scenario: Optional[FaultScenario] = None,
    execution_time_fn=None,
    collect_trace: bool = True,
    fold: bool = False,
    release_timeline=None,
) -> SimulationResult:
    """Simulate one policy over one task set under a fault scenario.

    This is the one-stop entry point the examples and the harness use:
    it materializes the scenario's fault oracles, builds the engine, and
    runs it.

    Args:
        taskset: tasks in priority order.
        policy: a fresh policy instance (policies hold per-run state such
            as alternation toggles; do not reuse across runs).
        horizon_ticks: releases strictly before this tick are simulated.
        timebase: tick grid (defaults to the task set's own).
        scenario: fault scenario; defaults to fault-free.
        collect_trace: False runs in stats-only mode (aggregate counters,
            no trace -- what sweeps consume).
        fold: enable the engine's cycle-folding fast path (requires
            ``collect_trace=False``).
        release_timeline: precomputed
            :class:`~repro.sim.timeline.ReleaseTimeline` to reuse.
    """
    base = timebase or taskset.timebase()
    fault_scenario = scenario or FaultScenario.none()
    transient, permanent = fault_scenario.materialize(horizon_ticks, base)
    engine = StandbySparingEngine(
        taskset=taskset,
        policy=policy,
        horizon_ticks=horizon_ticks,
        timebase=base,
        transient_fault_fn=transient,
        permanent_fault=permanent,
        execution_time_fn=execution_time_fn,
        collect_trace=collect_trace,
        fold=fold,
        release_timeline=release_timeline,
    )
    return engine.run()
