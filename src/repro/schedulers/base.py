"""Shared helpers for building and running scheduling policies."""

from __future__ import annotations

from typing import Optional

from ..faults.scenario import FaultScenario
from ..model.taskset import TaskSet
from ..sim.engine import (
    SchedulingPolicy,
    SimulationResult,
    StandbySparingEngine,
)
from ..sim.timeline import shared_release_timeline
from ..timebase import TimeBase


def run_policy(
    taskset: TaskSet,
    policy: SchedulingPolicy,
    horizon_ticks: int,
    timebase: Optional[TimeBase] = None,
    scenario: Optional[FaultScenario] = None,
    execution_time_fn=None,
    collect_trace: bool = True,
    fold: bool = False,
    release_timeline=None,
    release_model=None,
    initial_history: str = "met",
    speed_plan=None,
) -> SimulationResult:
    """Simulate one policy over one task set under a fault scenario.

    This is the one-stop entry point the examples and the harness use:
    it materializes the scenario's fault oracles, builds the engine, and
    runs it.

    Args:
        taskset: tasks in priority order.
        policy: a fresh policy instance (policies hold per-run state such
            as alternation toggles; do not reuse across runs).
        horizon_ticks: releases strictly before this tick are simulated.
        timebase: tick grid (defaults to the task set's own).
        scenario: fault scenario; defaults to fault-free.
        collect_trace: False runs in stats-only mode (aggregate counters,
            no trace -- what sweeps consume).
        fold: enable the engine's cycle-folding fast path (requires
            ``collect_trace=False``; self-disables on a non-periodic
            release timeline).
        release_timeline: precomputed
            :class:`~repro.sim.timeline.ReleaseTimeline` to reuse.
        release_model: arrival process
            (:class:`~repro.workload.release.ReleaseModel`) used to build
            the timeline when none was supplied; None keeps the paper's
            periodic releases.
        initial_history: (m,k)-history boundary condition, one of
            :data:`repro.model.history.INITIAL_HISTORY_MODES`.
        speed_plan: DVFS :class:`~repro.energy.dvfs.SpeedPlan`; main
            copies then dispatch at the plan's per-task speeds with
            stretched budgets (None runs at full speed).
    """
    base = timebase or taskset.timebase()
    fault_scenario = scenario or FaultScenario.none()
    transient, permanent = fault_scenario.materialize(horizon_ticks, base)
    if release_timeline is None and release_model is not None:
        release_timeline = shared_release_timeline(
            taskset, horizon_ticks, base, release_model
        )
    engine = StandbySparingEngine(
        taskset=taskset,
        policy=policy,
        horizon_ticks=horizon_ticks,
        timebase=base,
        transient_fault_fn=transient,
        permanent_fault=permanent,
        initial_history_met=initial_history,
        execution_time_fn=execution_time_fn,
        collect_trace=collect_trace,
        fold=fold,
        release_timeline=release_timeline,
        speed_plan=speed_plan,
    )
    return engine.run()
