"""MKSS_DP: static patterns with preference-oriented dual priority.

The second approach of the evaluation: mandatory jobs are still determined
by the static R-pattern, but they are scheduled with the preference
oriented scheme of Begam et al. [8] (without DVS):

* main copies are split across the two processors -- tasks at even
  priority index run their mains on the primary, odd on the spare (in
  Figure 1, τ1's main is on the primary and τ2's on the spare);
* each backup copy lives on the *other* processor and is procrastinated by
  the promotion time Y_i = D_i - R_i (Equation 2), modeled as a revised
  release r + Y_i;
* when a main copy completes successfully its backup is canceled (and vice
  versa if the backup happens to finish first).

Reproduces the paper's Figure 1 trace: 15 active-energy units on the
(5,4,3,2,4) / (10,10,3,1,2) example over [0, 20).
"""

from __future__ import annotations

from typing import List, Optional, Sequence

from ..analysis.promotion import promotion_times
from ..model.job import JobRole
from ..model.patterns import Pattern, RPattern, is_window_periodic
from ..sim.engine import (
    PRIMARY,
    SPARE,
    CopySpec,
    PolicyContext,
    ReleasePlan,
    SchedulingPolicy,
)
from ..sim.validation import ConformanceSpec, TaskConformance


class MKSSDualPriority(SchedulingPolicy):
    """Static R-pattern + preference-oriented dual-priority backups."""

    name = "MKSS_DP"

    def __init__(
        self,
        patterns: Optional[Sequence[Pattern]] = None,
        split_mains: bool = True,
        split_strategy: str = "alternate",
    ) -> None:
        """Args:
        patterns: static patterns (default: R-patterns).
        split_mains: split main copies across processors (the
            preference-oriented placement); when False all mains stay
            on the primary, recovering plain Haque-style dual priority.
        split_strategy: "alternate" assigns mains by priority parity
            (what Figure 1 exhibits); "balance" greedily assigns each
            task's main to the processor with less accumulated mandatory
            utilization, closer to [8]'s partitioning intent.
        """
        if split_strategy not in ("alternate", "balance"):
            raise ValueError(
                f"split_strategy must be 'alternate' or 'balance', "
                f"got {split_strategy!r}"
            )
        self._patterns: Optional[List[Pattern]] = (
            list(patterns) if patterns is not None else None
        )
        self._split_mains = split_mains
        self._split_strategy = split_strategy
        self._promotions: List[int] = []
        self._main_processor: List[int] = []

    def prepare(self, ctx: PolicyContext) -> None:
        if self._patterns is None:
            self._patterns = [RPattern(task.mk) for task in ctx.taskset]
        elif len(self._patterns) != len(ctx.taskset):
            raise ValueError("need exactly one pattern per task")
        self._promotions = promotion_times(ctx.taskset, ctx.timebase)
        self._main_processor = self._assign_mains(ctx)

    def _assign_mains(self, ctx: PolicyContext) -> List[int]:
        n = len(ctx.taskset)
        if not self._split_mains:
            return [PRIMARY] * n
        if self._split_strategy == "alternate":
            return [PRIMARY if i % 2 == 0 else SPARE for i in range(n)]
        # "balance": greedy by mandatory (m,k)-utilization, high first.
        loads = {PRIMARY: 0.0, SPARE: 0.0}
        assignment = [PRIMARY] * n
        order = sorted(
            range(n),
            key=lambda i: float(ctx.taskset[i].mk_utilization),
            reverse=True,
        )
        for index in order:
            target = PRIMARY if loads[PRIMARY] <= loads[SPARE] else SPARE
            assignment[index] = target
            loads[target] += float(ctx.taskset[index].mk_utilization)
        return assignment

    def main_processor(self, task_index: int) -> int:
        """Which processor hosts this task's main copies (after prepare)."""
        if self._main_processor:
            return self._main_processor[task_index]
        if not self._split_mains:
            return PRIMARY
        return PRIMARY if task_index % 2 == 0 else SPARE

    def plan_release(
        self,
        ctx: PolicyContext,
        task_index: int,
        job_index: int,
        release: int,
        deadline: int,
        fd: int,
    ) -> ReleasePlan:
        assert self._patterns is not None
        if not self._patterns[task_index].is_mandatory(job_index):
            return ReleasePlan.skip()
        if ctx.fault_mode:
            # Keep the survivor's analyzed schedule intact: a task whose
            # main lived on the survivor keeps releasing normally; a task
            # whose *backup* lived there keeps the Y_i postponement.
            # Mixing offsets within one task would break the periodicity
            # assumption behind the promotion-time guarantee.
            survivor = ctx.surviving_processor()
            offset = (
                0
                if self.main_processor(task_index) == survivor
                else self._promotions[task_index]
            )
            return ReleasePlan(
                copies=(CopySpec(JobRole.MAIN, survivor, release + offset),),
                classified_as="mandatory",
            )
        main_proc = self.main_processor(task_index)
        backup_proc = SPARE if main_proc == PRIMARY else PRIMARY
        postponed = release + self._promotions[task_index]
        return ReleasePlan(
            copies=(
                CopySpec(JobRole.MAIN, main_proc, release),
                CopySpec(JobRole.BACKUP, backup_proc, postponed),
            ),
            classified_as="mandatory",
        )

    def conformance(self, ctx: PolicyContext) -> ConformanceSpec:
        # Pattern classification, no optionals, backups postponed by the
        # promotion time Y_i (Equation 2).  Post-fault, a task whose main
        # lived on the survivor keeps releasing at r; one whose *backup*
        # lived there keeps the Y_i postponement.
        assert self._patterns is not None
        tasks = []
        for index, pattern in enumerate(self._patterns):
            promotion = self._promotions[index]
            main_proc = self.main_processor(index)
            tasks.append(
                TaskConformance(
                    classification="pattern",
                    pattern=pattern,
                    optional_fd_max=0,
                    backup_offset=promotion,
                    postfault_main_offset=(
                        0 if main_proc == PRIMARY else promotion,
                        0 if main_proc == SPARE else promotion,
                    ),
                )
            )
        return ConformanceSpec(scheme=self.name, tasks=tuple(tasks))

    def batch_profile(self, ctx: PolicyContext):
        # Pattern-mandatory only; mains split per _assign_mains, backups
        # on the other processor postponed by Y_i.  Post-fault a task
        # whose main lived on the survivor releases at r, otherwise it
        # keeps the Y_i postponement (mirrors plan_release exactly).
        assert self._patterns is not None
        if not all(is_window_periodic(p) for p in self._patterns):
            return None
        from ..sim.batch_profile import BatchProfile, BatchTaskProfile

        tasks = []
        for index, pattern in enumerate(self._patterns):
            promotion = self._promotions[index]
            main_proc = self.main_processor(index)
            tasks.append(
                BatchTaskProfile(
                    classification="pattern",
                    pattern_window=tuple(pattern.window()),
                    main_processor=main_proc,
                    backup_offset=promotion,
                    postfault_main_offset=(
                        0 if main_proc == PRIMARY else promotion,
                        0 if main_proc == SPARE else promotion,
                    ),
                )
            )
        return BatchProfile(tasks=tuple(tasks))

    def fold_state(self, ctx: PolicyContext, pattern_phases):
        # Promotions and main placement are fixed at prepare(); the only
        # release-to-release variation is the pattern phase.
        return self.fold_state_from_patterns(self._patterns, pattern_phases)
