"""Re-execution fault tolerance (software redundancy) — extension baseline.

The paper's introduction contrasts two redundancy styles: *hardware*
(standby-sparing: a second processor runs a backup copy, covering
permanent **and** transient faults) and *software* (re-execute a faulted
job on the same processor when slack allows, covering transient faults
only — Zhu et al.'s reliability-aware line of work).

:class:`ReExecutionFP` implements the software style on one processor
under the (m,k) model: jobs are classified dynamically (mandatory iff
FD = 0), optional FD = 1 jobs run best-effort, and when a job's sanity
check fails at completion a recovery copy is re-enqueued immediately —
if it can still meet the deadline.  Repeated faults trigger repeated
recoveries (each recovery rolls the fault dice again), bounded by
``max_recoveries``.

Energy-wise this needs no spare processor at all, so on transient-only
fault scenarios it undercuts every standby-sparing scheme; the price is
zero tolerance of permanent faults (after one, the system is simply
single-processor anyway) and a recovery-induced tail latency.  The
comparison bench quantifies both sides.
"""

from __future__ import annotations

from typing import Dict, Optional, Tuple

from ..model.job import Job, JobRole
from ..sim.engine import (
    PRIMARY,
    CopySpec,
    PolicyContext,
    ReleasePlan,
    SchedulingPolicy,
)
from ..sim.validation import ConformanceSpec, TaskConformance


class ReExecutionFP(SchedulingPolicy):
    """Single-processor FP with (m,k) classification and re-execution."""

    name = "ReExecution_FP"

    def __init__(
        self,
        processor: int = PRIMARY,
        fd_threshold: int = 1,
        max_recoveries: int = 3,
    ) -> None:
        """Args:
        processor: where everything runs.
        fd_threshold: execute optionals with 1 <= FD <= this.
        max_recoveries: recovery copies allowed per logical job.
        """
        self._processor = processor
        self.fd_threshold = fd_threshold
        self.max_recoveries = max_recoveries
        self._recovery_counts: Dict[Tuple[int, int], int] = {}

    def _target(self, ctx: PolicyContext) -> int:
        if ctx.fault_mode and ctx.dead_processor == self._processor:
            return ctx.surviving_processor()
        return self._processor

    def plan_release(
        self,
        ctx: PolicyContext,
        task_index: int,
        job_index: int,
        release: int,
        deadline: int,
        fd: int,
    ) -> ReleasePlan:
        processor = self._target(ctx)
        if fd == 0:
            return ReleasePlan(
                copies=(CopySpec(JobRole.MAIN, processor, release),),
                classified_as="mandatory",
            )
        if 1 <= fd <= self.fd_threshold:
            return ReleasePlan(
                copies=(CopySpec(JobRole.OPTIONAL, processor, release),),
                classified_as="optional",
            )
        return ReleasePlan.skip()

    def plan_recovery(
        self, ctx: PolicyContext, job: Job, now: int
    ) -> Optional[CopySpec]:
        key = job.key()
        used = self._recovery_counts.get(key, 0)
        if used >= self.max_recoveries:
            return None
        if now + job.wcet > job.deadline:
            return None  # the recovery could never finish in time
        self._recovery_counts[key] = used + 1
        return CopySpec(job.role, self._target(ctx), now)

    def conformance(self, ctx: PolicyContext) -> ConformanceSpec:
        # FD classification, no backups; each logical job may execute up
        # to 1 + max_recoveries copies' worth of work.
        return ConformanceSpec(
            scheme=self.name,
            tasks=tuple(
                TaskConformance(
                    classification="fd",
                    optional_fd_max=self.fd_threshold,
                )
                for _ in ctx.taskset
            ),
            max_copies=1 + self.max_recoveries,
        )

    def batch_profile(self, ctx: PolicyContext):
        # FD classification, single copy, no backups.  Recoveries only
        # trigger on transient faults, which the batch kernel excludes
        # up front, so the recovery ledger never activates in a batched
        # run.  With two processors ``_target`` is always the survivor
        # in fault mode, which is exactly the kernel's post-fault rule.
        from ..sim.batch_profile import BatchProfile, BatchTaskProfile

        return BatchProfile(
            tasks=tuple(
                BatchTaskProfile(
                    classification="fd",
                    fd_max=self.fd_threshold,
                    main_processor=self._processor,
                    backup_offset=None,
                    optional_processor=self._processor,
                    postfault_optionals=True,
                )
                for _ in ctx.taskset
            ),
        )

    def fold_state(self, ctx: PolicyContext, pattern_phases):
        # Recovery budgets only accrue after transient faults, and the
        # engine arms folding only when transients are impossible -- so
        # a non-empty ledger means something unexpected happened and
        # folding must stay off.
        return () if not self._recovery_counts else None
