"""Plain single-processor fixed-priority scheduling (substrate baseline).

Every job is treated as mandatory and runs as a single copy on the primary
processor; no sparing, no patterns.  Useful as a sanity baseline (it is
the schedule classic RTA reasons about) and for exercising the engine in
isolation from the standby-sparing machinery.
"""

from __future__ import annotations

from ..model.job import JobRole
from ..sim.engine import (
    PRIMARY,
    CopySpec,
    PolicyContext,
    ReleasePlan,
    SchedulingPolicy,
)
from ..sim.validation import ConformanceSpec, TaskConformance


class SingleProcessorFP(SchedulingPolicy):
    """All jobs mandatory, one copy, primary processor, FP order."""

    name = "FP"

    def __init__(self, processor: int = PRIMARY) -> None:
        self._processor = processor

    def plan_release(
        self,
        ctx: PolicyContext,
        task_index: int,
        job_index: int,
        release: int,
        deadline: int,
        fd: int,
    ) -> ReleasePlan:
        processor = self._processor
        if ctx.fault_mode and ctx.dead_processor == processor:
            processor = ctx.surviving_processor()
        return ReleasePlan(
            copies=(CopySpec(JobRole.MAIN, processor, release),),
            classified_as="mandatory",
        )

    def conformance(self, ctx: PolicyContext) -> ConformanceSpec:
        # Every job mandatory, single copy, no backups, no postponement.
        return ConformanceSpec(
            scheme=self.name,
            tasks=tuple(
                TaskConformance(classification="all") for _ in ctx.taskset
            ),
            max_copies=1,
        )

    def fold_state(self, ctx: PolicyContext, pattern_phases):
        # Stateless: every job is mandatory on a fixed processor.
        return ()
