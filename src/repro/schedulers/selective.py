"""MKSS_Selective: the paper's contribution (Algorithm 1).

Principles (Section IV):

(i)   Jobs are classified dynamically at release: mandatory iff the
      flexibility degree is 0.  Mandatory mains go to the primary's MJQ;
      their backups to the spare's MJQ with releases postponed by the
      offline θ_i (Definitions 2-5, floored at the promotion time Y_i).

(ii)  Only optional jobs with **FD exactly 1** are selected for execution;
      more flexible jobs are skipped outright.  A selected optional has no
      backup and runs in the OJQ, strictly below the MJQ.

(iii) Successive selected optionals of the same task alternate between the
      primary and the spare processor, spreading their load so they have a
      better chance to complete (Figure 4's O12/O22 on the primary,
      J13/J'23 on the spare).

On a successful optional completion the engine updates the task's history,
which raises the next job's flexibility degree -- demoting would-be
mandatory jobs and dropping their backups, the scheme's energy lever.

After a permanent fault the survivor runs mandatory jobs (single copy) and
still executes FD = 1 optionals, preserving both the (m,k) guarantee and
the adaptive behaviour.

The ``fd_threshold`` knob generalizes principle (ii) for ablation studies:
the paper's scheme is ``fd_threshold=1`` (select only FD == 1); larger
values select any optional with ``1 <= FD <= fd_threshold``.
"""

from __future__ import annotations

from typing import List

from ..analysis.postponement import task_postponement_intervals
from ..errors import ConfigurationError
from ..model.job import JobRole
from ..sim.engine import (
    PRIMARY,
    SPARE,
    CopySpec,
    PolicyContext,
    ReleasePlan,
    SchedulingPolicy,
)
from ..sim.validation import ConformanceSpec, TaskConformance


class MKSSSelective(SchedulingPolicy):
    """Selective execution of FD = 1 optionals with alternation (Alg. 1)."""

    name = "MKSS_Selective"

    def __init__(
        self,
        fd_threshold: int = 1,
        alternate: bool = True,
        use_theta_postponement: bool = True,
        optionals_after_fault: bool = False,
    ) -> None:
        """Args:
        fd_threshold: select optionals with 1 <= FD <= this (paper: 1).
        alternate: alternate selected optionals across processors
            (paper: True); False pins them to the primary.
        use_theta_postponement: postpone backups by θ_i (paper: True);
            False falls back to the promotion time Y_i as in MKSS_DP.
        optionals_after_fault: keep executing FD=1 optionals on the
            survivor after a permanent fault.  Default False: with no
            spare left an optional cancels no backup, so running it only
            costs energy (QoS-greedy deployments may prefer True).
        """
        if fd_threshold < 1:
            raise ConfigurationError(
                f"fd_threshold must be >= 1, got {fd_threshold}"
            )
        self.fd_threshold = fd_threshold
        self.alternate = alternate
        self.use_theta_postponement = use_theta_postponement
        self.optionals_after_fault = optionals_after_fault
        self._postponements: List[int] = []
        self._promotions: List[int] = []
        self._next_optional_processor: List[int] = []

    def prepare(self, ctx: PolicyContext) -> None:
        result = task_postponement_intervals(
            ctx.taskset, ctx.timebase, horizon_ticks=ctx.horizon_ticks
        )
        self._postponements = (
            result.thetas if self.use_theta_postponement else result.promotions
        )
        self._promotions = result.promotions
        self._next_optional_processor = [PRIMARY] * len(ctx.taskset)

    def plan_release(
        self,
        ctx: PolicyContext,
        task_index: int,
        job_index: int,
        release: int,
        deadline: int,
        fd: int,
    ) -> ReleasePlan:
        if fd == 0:
            return self._mandatory_plan(ctx, task_index, release)
        if ctx.fault_mode and not self.optionals_after_fault:
            # With the spare gone there are no backups left to drop, so an
            # optional execution saves nothing -- it only spends energy on
            # the survivor.  Run the bare mandatory pattern instead (the
            # FD=0 jobs), which Theorem 1 already guarantees.
            return ReleasePlan.skip()
        if 1 <= fd <= self.fd_threshold:
            return self._optional_plan(ctx, task_index, release)
        return ReleasePlan.skip()

    def _mandatory_plan(
        self, ctx: PolicyContext, task_index: int, release: int
    ) -> ReleasePlan:
        if ctx.fault_mode:
            # Post-fault releases on the spare use the *promotion time*
            # Y_i, not θ_i: Y's guarantee is the per-job critical-instant
            # argument, valid for any per-task constant offsets -- whereas
            # θ's guarantee (Definitions 2-5) assumes the static R-pattern
            # alignment, which the dynamic patterns have long drifted away
            # from by the time a fault strikes.  A generated counterexample
            # (see DESIGN.md §4b.7 and the regression test) shows θ offsets
            # missing a mandatory deadline post-fault.
            survivor = ctx.surviving_processor()
            offset = 0 if survivor == PRIMARY else self._promotions[task_index]
            return ReleasePlan(
                copies=(CopySpec(JobRole.MAIN, survivor, release + offset),),
                classified_as="mandatory",
            )
        postponed = release + self._postponements[task_index]
        return ReleasePlan(
            copies=(
                CopySpec(JobRole.MAIN, PRIMARY, release),
                CopySpec(JobRole.BACKUP, SPARE, postponed),
            ),
            classified_as="mandatory",
        )

    def _optional_plan(
        self, ctx: PolicyContext, task_index: int, release: int
    ) -> ReleasePlan:
        if ctx.fault_mode:
            processor = ctx.surviving_processor()
        elif self.alternate:
            processor = self._next_optional_processor[task_index]
            self._next_optional_processor[task_index] = (
                SPARE if processor == PRIMARY else PRIMARY
            )
        else:
            processor = PRIMARY
        return ReleasePlan(
            copies=(CopySpec(JobRole.OPTIONAL, processor, release),),
            classified_as="optional",
        )

    def conformance(self, ctx: PolicyContext) -> ConformanceSpec:
        # FD classification (mandatory iff FD = 0), optionals only within
        # [1, fd_threshold], backups postponed by θ_i (or Y_i without
        # theta postponement); post-fault mandatory releases on the spare
        # are offset by Y_i, on the primary by 0.
        return ConformanceSpec(
            scheme=self.name,
            tasks=tuple(
                TaskConformance(
                    classification="fd",
                    optional_fd_max=self.fd_threshold,
                    backup_offset=self._postponements[index],
                    postfault_main_offset=(0, self._promotions[index]),
                )
                for index in range(len(ctx.taskset))
            ),
        )

    def batch_profile(self, ctx: PolicyContext):
        # FD classification with optionals in [1, fd_threshold]; backups
        # postponed by θ_i (or Y_i), post-fault mains offset by Y_i on the
        # spare; optionals alternate per task unless pinned, and stop
        # after a fault unless optionals_after_fault.
        from ..sim.batch_profile import BatchProfile, BatchTaskProfile

        return BatchProfile(
            tasks=tuple(
                BatchTaskProfile(
                    classification="fd",
                    fd_max=self.fd_threshold,
                    main_processor=PRIMARY,
                    backup_offset=self._postponements[index],
                    optional_processor=PRIMARY,
                    alternate_optionals=self.alternate,
                    postfault_main_offset=(0, self._promotions[index]),
                    postfault_optionals=self.optionals_after_fault,
                )
                for index in range(len(ctx.taskset))
            ),
        )

    def fold_state(self, ctx: PolicyContext, pattern_phases):
        # The optional-processor alternation is the only mutable state;
        # everything else (θ, Y) is fixed at prepare().
        return tuple(self._next_optional_processor)
