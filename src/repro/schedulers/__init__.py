"""Scheduling policies: the paper's three schemes and extension baselines.

* :class:`MKSSStatic` (MKSS_ST)   -- static R-pattern, concurrent copies.
* :class:`MKSSDualPriority` (MKSS_DP) -- static R-pattern, preference-
  oriented mains, backups postponed by the promotion time Y_i.
* :class:`MKSSGreedy`             -- dynamic patterns, every feasible
  optional executed on the primary (the motivation's Figures 2-3).
* :class:`MKSSSelective`          -- the paper's contribution
  (Algorithm 1): FD = 1 optionals only, alternating processors, backups
  postponed by θ_i.
* :class:`SingleProcessorFP`      -- plain FP substrate (no sparing).
* :class:`DistanceBasedPriority`  -- DBP extension baseline (Hamdaoui &
  Ramanathan) on a single processor.
"""

from .base import run_policy
from .mkss_st import MKSSStatic
from .mkss_dp import MKSSDualPriority
from .greedy import MKSSGreedy
from .selective import MKSSSelective
from .hybrid import MKSSHybrid, selective_execution_rate
from .fp import SingleProcessorFP
from .dbp import DistanceBasedPriority
from .reexecution import ReExecutionFP

__all__ = [
    "run_policy",
    "MKSSStatic",
    "MKSSDualPriority",
    "MKSSGreedy",
    "MKSSSelective",
    "MKSSHybrid",
    "selective_execution_rate",
    "SingleProcessorFP",
    "DistanceBasedPriority",
    "ReExecutionFP",
]
