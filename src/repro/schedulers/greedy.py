"""The greedy dynamic-pattern scheme from the motivation (Figures 2-3).

Jobs are classified *dynamically* at release from the task's outcome
history: a job is mandatory iff its flexibility degree is 0.  Every
optional job (FD >= 1) is greedily submitted to the primary processor's
optional queue and executed whenever the mandatory queue is empty -- most
urgent (lowest FD) first, the footnote's "less flexible first" rule.
Optional jobs that can no longer finish by their deadline are dropped
(O11 in Figure 2).  Mandatory jobs keep the standby-sparing treatment:
main on the primary, backup on the spare postponed by the promotion time.

The paper introduces this scheme to show that greed backfires on modest
workloads (Figure 3: 20 energy units where the selective scheme needs
14); it is retained here as an ablation baseline.
"""

from __future__ import annotations

from typing import List

from ..analysis.promotion import promotion_times
from ..model.job import JobRole
from ..sim.engine import (
    PRIMARY,
    SPARE,
    CopySpec,
    PolicyContext,
    ReleasePlan,
    SchedulingPolicy,
)
from ..sim.validation import ConformanceSpec, TaskConformance


class MKSSGreedy(SchedulingPolicy):
    """Dynamic patterns with greedy optional execution on the primary."""

    name = "MKSS_Greedy"

    def __init__(
        self, optional_processor: int = PRIMARY, preemptive: bool = False
    ) -> None:
        """Args:
        optional_processor: where optional jobs are queued (the
            motivation uses the primary only).
        preemptive: whether optional jobs may preempt each other; the
            paper's Figure 3 trace runs optionals to completion (O12 is
            never started), so the default is False.
        """
        self._optional_processor = optional_processor
        self.optional_preemption = preemptive
        self._promotions: List[int] = []

    def prepare(self, ctx: PolicyContext) -> None:
        self._promotions = promotion_times(ctx.taskset, ctx.timebase)

    def plan_release(
        self,
        ctx: PolicyContext,
        task_index: int,
        job_index: int,
        release: int,
        deadline: int,
        fd: int,
    ) -> ReleasePlan:
        if ctx.fault_mode:
            survivor = ctx.surviving_processor()
            if fd == 0:
                # Preserve the survivor's analyzed offsets (see MKSS_DP).
                offset = (
                    0
                    if survivor == PRIMARY
                    else self._promotions[task_index]
                )
                return ReleasePlan(
                    copies=(CopySpec(JobRole.MAIN, survivor, release + offset),),
                    classified_as="mandatory",
                )
            return ReleasePlan(
                copies=(CopySpec(JobRole.OPTIONAL, survivor, release),),
                classified_as="optional",
            )
        if fd == 0:
            postponed = release + self._promotions[task_index]
            return ReleasePlan(
                copies=(
                    CopySpec(JobRole.MAIN, PRIMARY, release),
                    CopySpec(JobRole.BACKUP, SPARE, postponed),
                ),
                classified_as="mandatory",
            )
        return ReleasePlan(
            copies=(
                CopySpec(JobRole.OPTIONAL, self._optional_processor, release),
            ),
            classified_as="optional",
        )

    def conformance(self, ctx: PolicyContext) -> ConformanceSpec:
        # FD classification; *every* FD >= 1 job may run as an optional
        # (the greedy rule), backups postponed by the promotion time.
        return ConformanceSpec(
            scheme=self.name,
            tasks=tuple(
                TaskConformance(
                    classification="fd",
                    optional_fd_max=None,
                    backup_offset=self._promotions[index],
                    postfault_main_offset=(0, self._promotions[index]),
                )
                for index in range(len(ctx.taskset))
            ),
            optional_preemption=self.optional_preemption,
        )

    def batch_profile(self, ctx: PolicyContext):
        # FD classification with no upper bound on the optional degree;
        # optionals are pinned (never alternating) and keep running on the
        # survivor after a fault.  Non-preemptive optionals map to the
        # kernel's sticky-optional dispatch rule.
        from ..sim.batch_profile import (
            UNBOUNDED_FD,
            BatchProfile,
            BatchTaskProfile,
        )

        return BatchProfile(
            tasks=tuple(
                BatchTaskProfile(
                    classification="fd",
                    fd_max=UNBOUNDED_FD,
                    main_processor=PRIMARY,
                    backup_offset=self._promotions[index],
                    optional_processor=self._optional_processor,
                    postfault_main_offset=(0, self._promotions[index]),
                    postfault_optionals=True,
                )
                for index in range(len(ctx.taskset))
            ),
            sticky_optionals=not self.optional_preemption,
        )

    def fold_state(self, ctx: PolicyContext, pattern_phases):
        # All decisions derive from the flexibility degree (part of the
        # engine's canonical state) and constants fixed at prepare().
        return ()
