"""MKSS_Hybrid: per-task offline choice between selective and DP modes.

An extension beyond the paper, motivated by a crossover the reproduction
exposes (see EXPERIMENTS.md): the FD = 1 selection rule executes optional
jobs at a long-run rate S that can exceed the mandatory rate m/k -- for an
(1,2) task it executes *every* job -- which is only worth it when the
dual-priority backups would otherwise overlap their mains substantially.
At low utilization the θ-postponed backups are almost always canceled
before running, so plain DP-style duplication is cheaper for such tasks.

``MKSSHybrid`` therefore decides **per task, offline**, which mode to use:

* the long-run selection rate ``S_i`` of the FD = 1 rule comes from
  :func:`selective_execution_rate`, an exact cycle detection on the
  (m,k)-history automaton (all selected jobs assumed to succeed -- the
  fault-free steady state);
* the DP-mode cost per window is ``m_i * (C_i + overlap_i)`` where
  ``overlap_i = min(C_i, max(0, R_i - θ_i))`` bounds the backup work that
  runs before the main's completion cancels it;
* the selective-mode cost per window is ``S_i * k_i * C_i``;
* the cheaper mode wins.

Mixed operation is safe: selective-mode tasks follow Algorithm 1's
argument (Theorem 1), DP-mode tasks the static R-pattern + postponement
argument, and both modes' mandatory/backup jobs live in the same MJQs the
offline analyses already cover.
"""

from __future__ import annotations

from fractions import Fraction
from typing import Dict, List, Tuple

from ..analysis.postponement import task_postponement_intervals
from ..model.history import MKHistory
from ..model.job import JobRole
from ..model.mk import MKConstraint
from ..model.patterns import RPattern
from ..sim.engine import (
    PRIMARY,
    SPARE,
    CopySpec,
    PolicyContext,
    ReleasePlan,
    SchedulingPolicy,
)
from ..sim.validation import ConformanceSpec, TaskConformance


def selective_execution_rate(mk: MKConstraint) -> Fraction:
    """Long-run fraction of jobs the FD = 1 rule executes, fault-free.

    Iterates the history automaton (select iff FD == 1, selected jobs
    succeed, others miss) until the window state repeats, then returns the
    execution rate over the detected cycle.  Examples: (1,2) -> 1,
    (2,4) -> 2/3, (1,k) -> 1/k.
    """
    history = MKHistory(mk)
    seen: Dict[Tuple[bool, ...], int] = {}
    executed: List[bool] = []
    step = 0
    while True:
        state = history.outcomes()
        if state in seen:
            start = seen[state]
            cycle = executed[start:]
            if not cycle:  # pragma: no cover - cycle length >= 1 always
                return Fraction(0)
            return Fraction(sum(cycle), len(cycle))
        seen[state] = step
        selected = history.flexibility_degree() == 1
        history.record(selected)
        executed.append(selected)
        step += 1


class MKSSHybrid(SchedulingPolicy):
    """Offline per-task mode selection between selective and DP styles."""

    name = "MKSS_Hybrid"

    def __init__(self, alternate: bool = True) -> None:
        """Args:
        alternate: alternate selective-mode optionals across processors
            (as in Algorithm 1's principle (iii)).
        """
        self.alternate = alternate
        self._selective_mode: List[bool] = []
        self._postponements: List[int] = []
        self._promotions: List[int] = []
        self._patterns: List[RPattern] = []
        self._next_optional_processor: List[int] = []

    def prepare(self, ctx: PolicyContext) -> None:
        taskset = ctx.taskset
        base = ctx.timebase
        self._patterns = [RPattern(task.mk) for task in taskset]
        result = task_postponement_intervals(
            taskset, base, horizon_ticks=ctx.horizon_ticks
        )
        self._postponements = result.thetas
        self._promotions = result.promotions
        from ..analysis.energy_bounds import (
            dp_energy_bound,
            selective_energy_bound,
        )

        self._selective_mode = []
        for index, task in enumerate(taskset):
            dp_cost = dp_energy_bound(
                taskset, index, base, self._postponements[index]
            )
            selective_cost = selective_energy_bound(task)
            self._selective_mode.append(selective_cost < dp_cost)
        self._next_optional_processor = [PRIMARY] * len(taskset)

    def mode_of(self, task_index: int) -> str:
        """'selective' or 'dp' -- the offline decision (after prepare)."""
        return "selective" if self._selective_mode[task_index] else "dp"

    def plan_release(
        self,
        ctx: PolicyContext,
        task_index: int,
        job_index: int,
        release: int,
        deadline: int,
        fd: int,
    ) -> ReleasePlan:
        if self._selective_mode[task_index]:
            return self._plan_selective(ctx, task_index, release, fd)
        return self._plan_dp(ctx, task_index, job_index, release)

    # -- selective-mode tasks (Algorithm 1) ------------------------------

    def _plan_selective(
        self, ctx: PolicyContext, task_index: int, release: int, fd: int
    ) -> ReleasePlan:
        if fd == 0:
            return self._mandatory(ctx, task_index, release)
        if ctx.fault_mode or fd != 1:
            return ReleasePlan.skip()
        if self.alternate:
            processor = self._next_optional_processor[task_index]
            self._next_optional_processor[task_index] = (
                SPARE if processor == PRIMARY else PRIMARY
            )
        else:
            processor = PRIMARY
        return ReleasePlan(
            copies=(CopySpec(JobRole.OPTIONAL, processor, release),),
            classified_as="optional",
        )

    # -- DP-mode tasks (static pattern + θ-postponed backups) ------------

    def _plan_dp(
        self, ctx: PolicyContext, task_index: int, job_index: int, release: int
    ) -> ReleasePlan:
        if not self._patterns[task_index].is_mandatory(job_index):
            return ReleasePlan.skip()
        return self._mandatory(ctx, task_index, release)

    # -- shared mandatory plan with survivor-offset discipline -----------

    def _mandatory(
        self, ctx: PolicyContext, task_index: int, release: int
    ) -> ReleasePlan:
        if ctx.fault_mode:
            # Post-fault offsets use Y_i, not θ_i, for the same soundness
            # reason as MKSSSelective (dynamic patterns break θ's static
            # alignment assumption; see DESIGN.md §4b.7).
            survivor = ctx.surviving_processor()
            offset = (
                0 if survivor == PRIMARY else self._promotions[task_index]
            )
            return ReleasePlan(
                copies=(CopySpec(JobRole.MAIN, survivor, release + offset),),
                classified_as="mandatory",
            )
        return ReleasePlan(
            copies=(
                CopySpec(JobRole.MAIN, PRIMARY, release),
                CopySpec(
                    JobRole.BACKUP,
                    SPARE,
                    release + self._postponements[task_index],
                ),
            ),
            classified_as="mandatory",
        )

    def conformance(self, ctx: PolicyContext) -> ConformanceSpec:
        # Selective-mode tasks follow Algorithm 1 (FD rule, optionals at
        # FD = 1 only); DP-mode tasks follow their static R-pattern and
        # never run optionals.  Both postpone backups by θ_i and use the
        # Y_i survivor offset post-fault.
        tasks = []
        for index in range(len(ctx.taskset)):
            shared = dict(
                backup_offset=self._postponements[index],
                postfault_main_offset=(0, self._promotions[index]),
            )
            if self._selective_mode[index]:
                tasks.append(
                    TaskConformance(
                        classification="fd", optional_fd_max=1, **shared
                    )
                )
            else:
                tasks.append(
                    TaskConformance(
                        classification="pattern",
                        pattern=self._patterns[index],
                        optional_fd_max=0,
                        **shared,
                    )
                )
        return ConformanceSpec(scheme=self.name, tasks=tuple(tasks))

    def batch_profile(self, ctx: PolicyContext):
        # Selective-mode tasks follow Algorithm 1's FD rule (optionals at
        # FD = 1 only, never post-fault); DP-mode tasks follow their
        # static R-pattern with no optionals.  Both postpone backups by
        # θ_i and use the Y_i survivor offset post-fault.
        from ..sim.batch_profile import BatchProfile, BatchTaskProfile

        tasks = []
        for index in range(len(ctx.taskset)):
            shared = dict(
                main_processor=PRIMARY,
                backup_offset=self._postponements[index],
                postfault_main_offset=(0, self._promotions[index]),
            )
            if self._selective_mode[index]:
                tasks.append(
                    BatchTaskProfile(
                        classification="fd",
                        fd_max=1,
                        optional_processor=PRIMARY,
                        alternate_optionals=self.alternate,
                        **shared,
                    )
                )
            else:
                tasks.append(
                    BatchTaskProfile(
                        classification="pattern",
                        pattern_window=tuple(self._patterns[index].window()),
                        **shared,
                    )
                )
        return BatchProfile(tasks=tuple(tasks))

    def fold_state(self, ctx: PolicyContext, pattern_phases):
        # Mutable state: per-task optional-processor alternation plus the
        # DP-mode tasks' static pattern phase (R-patterns, so always
        # window-periodic).
        return (tuple(self._next_optional_processor), pattern_phases)
