"""Distance-based priority (DBP) -- extension baseline.

Hamdaoui & Ramanathan's classic dynamic scheme for (m,k)-firm streams:
each task's priority is its *distance to failure*, i.e. how many more
consecutive misses it can absorb -- exactly the flexibility degree of this
package, plus one.  Jobs closer to violating their constraint get higher
priority.

This is not part of the paper's evaluation (which is fixed-priority
throughout), but it is the canonical related dynamic scheme and makes a
natural extra baseline for the ablation benches: it shows how much of the
selective scheme's win comes from standby-sparing-aware *placement* rather
than from (m,k)-aware *prioritization* alone.

Implementation note: the engine's queues order by a key fixed at release;
DBP's distance is indeed fixed at release (it changes only with outcomes
of earlier jobs of the same task, all decided by then), so the mapping is
exact.  Every job runs as a single copy; mandatory-urgency jobs
(distance 1, i.e. FD 0) go to the MJQ so they preempt everything else,
mirroring DBP's intent on one processor.
"""

from __future__ import annotations

from ..model.job import JobRole
from ..sim.engine import (
    PRIMARY,
    CopySpec,
    PolicyContext,
    ReleasePlan,
    SchedulingPolicy,
)
from ..sim.validation import ConformanceSpec, TaskConformance


class DistanceBasedPriority(SchedulingPolicy):
    """Single-processor DBP over the engine's two-queue structure."""

    name = "DBP"

    def __init__(self, processor: int = PRIMARY, run_all: bool = False) -> None:
        """Args:
        processor: the processor everything runs on.
        run_all: when True every job is submitted (classic DBP); when
            False jobs with distance > 2 are skipped, a common
            energy-aware DBP variant that only runs jobs within two
            misses of failure.
        """
        self._processor = processor
        self._run_all = run_all

    def plan_release(
        self,
        ctx: PolicyContext,
        task_index: int,
        job_index: int,
        release: int,
        deadline: int,
        fd: int,
    ) -> ReleasePlan:
        processor = self._processor
        if ctx.fault_mode and ctx.dead_processor == processor:
            processor = ctx.surviving_processor()
        if fd == 0:
            return ReleasePlan(
                copies=(CopySpec(JobRole.MAIN, processor, release),),
                classified_as="mandatory",
            )
        if not self._run_all and fd > 2:
            return ReleasePlan.skip()
        # The OJQ orders by (fd, task, job): exactly DBP's smaller
        # distance-to-failure = higher priority, FP tie-break.
        return ReleasePlan(
            copies=(CopySpec(JobRole.OPTIONAL, processor, release),),
            classified_as="optional",
        )

    def conformance(self, ctx: PolicyContext) -> ConformanceSpec:
        # FD classification, single copy, no backups; the energy-aware
        # variant only runs optionals within two misses of failure.
        return ConformanceSpec(
            scheme=self.name,
            tasks=tuple(
                TaskConformance(
                    classification="fd",
                    optional_fd_max=None if self._run_all else 2,
                )
                for _ in ctx.taskset
            ),
            max_copies=1,
        )

    def fold_state(self, ctx: PolicyContext, pattern_phases):
        # Decisions derive from the flexibility degree (part of the
        # engine's canonical state) and constructor constants.
        return ()
