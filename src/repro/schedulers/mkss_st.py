"""MKSS_ST: the static reference scheme (Section V, first approach).

Task sets are statically partitioned with R-patterns; every mandatory job
runs *concurrently* on both processors -- main on the primary, backup on
the spare, both released at the nominal release time, with no
procrastination.  Optional jobs are never executed.  The evaluation uses
this scheme's energy as the normalization reference.

Because the two processors are identical and both copies are released
together, the copies finish (essentially) together and cancellation saves
nothing in the fault-free case -- which is exactly why the paper treats
this scheme as the upper reference: its active energy is twice the
mandatory workload.
"""

from __future__ import annotations

from typing import List, Optional, Sequence

from ..model.job import JobRole
from ..model.patterns import Pattern, RPattern, is_window_periodic
from ..sim.engine import (
    PRIMARY,
    SPARE,
    CopySpec,
    PolicyContext,
    ReleasePlan,
    SchedulingPolicy,
)
from ..sim.validation import ConformanceSpec, TaskConformance


class MKSSStatic(SchedulingPolicy):
    """Static R-pattern standby-sparing without procrastination."""

    name = "MKSS_ST"

    def __init__(self, patterns: Optional[Sequence[Pattern]] = None) -> None:
        """Args:
        patterns: static partitioning patterns, one per task; defaults
            to deeply-red R-patterns (the paper's choice).
        """
        self._patterns: Optional[List[Pattern]] = (
            list(patterns) if patterns is not None else None
        )

    def prepare(self, ctx: PolicyContext) -> None:
        if self._patterns is None:
            self._patterns = [RPattern(task.mk) for task in ctx.taskset]
        elif len(self._patterns) != len(ctx.taskset):
            raise ValueError("need exactly one pattern per task")

    def plan_release(
        self,
        ctx: PolicyContext,
        task_index: int,
        job_index: int,
        release: int,
        deadline: int,
        fd: int,
    ) -> ReleasePlan:
        assert self._patterns is not None
        if not self._patterns[task_index].is_mandatory(job_index):
            return ReleasePlan.skip()
        if ctx.fault_mode:
            survivor = ctx.surviving_processor()
            return ReleasePlan(
                copies=(CopySpec(JobRole.MAIN, survivor, release),),
                classified_as="mandatory",
            )
        return ReleasePlan(
            copies=(
                CopySpec(JobRole.MAIN, PRIMARY, release),
                CopySpec(JobRole.BACKUP, SPARE, release),
            ),
            classified_as="mandatory",
        )

    def conformance(self, ctx: PolicyContext) -> ConformanceSpec:
        # Pattern classification, never an optional, both copies released
        # together (no procrastination): backup offset 0, post-fault
        # mandatory releases land on the survivor immediately.
        assert self._patterns is not None
        return ConformanceSpec(
            scheme=self.name,
            tasks=tuple(
                TaskConformance(
                    classification="pattern",
                    pattern=pattern,
                    optional_fd_max=0,
                    backup_offset=0,
                )
                for pattern in self._patterns
            ),
        )

    def batch_profile(self, ctx: PolicyContext):
        # Pattern-mandatory only, both copies at the nominal release,
        # post-fault mains land on the survivor immediately.  Supplied
        # patterns that are not window-periodic cannot be expressed as a
        # k-bit mask, so those runs stay on the scalar engine.
        assert self._patterns is not None
        if not all(is_window_periodic(p) for p in self._patterns):
            return None
        from ..sim.batch_profile import BatchProfile, BatchTaskProfile

        return BatchProfile(
            tasks=tuple(
                BatchTaskProfile(
                    classification="pattern",
                    pattern_window=tuple(pattern.window()),
                    main_processor=PRIMARY,
                    backup_offset=0,
                )
                for pattern in self._patterns
            ),
        )

    def fold_state(self, ctx: PolicyContext, pattern_phases):
        # The only release-to-release variation is the pattern phase.
        return self.fold_state_from_patterns(self._patterns, pattern_phases)
