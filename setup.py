"""Setuptools shim.

Metadata lives in pyproject.toml; this file exists so ``pip install -e .``
works in offline environments whose pip lacks the ``wheel`` package needed
for PEP 660 editable builds (``--no-use-pep517`` then takes this path).
"""

from setuptools import setup

# Mirrors [project.optional-dependencies] in pyproject.toml for the
# legacy setup() path; keep the two in sync.
setup(
    extras_require={
        "test": ["pytest", "pytest-benchmark", "hypothesis"],
        "batch": ["numpy>=2.0"],
        "service": [],
    }
)
