"""Setuptools shim.

Metadata lives in pyproject.toml; this file exists so ``pip install -e .``
works in offline environments whose pip lacks the ``wheel`` package needed
for PEP 660 editable builds (``--no-use-pep517`` then takes this path).
"""

from setuptools import setup

setup()
